(* The verifier's own test suite.

   Negative direction: compile a small known-good program, then break its
   IR by hand in one specific way per test and require [Verify.program]
   to report the matching structured error (not merely *an* error — a
   verifier that flags everything as "unknown struct" would pass a
   weaker check).

   Positive direction: the verifier must stay silent on every program of
   the benchmark roster, both as lowered and after the driver's chosen
   transformations — [D.evaluate ~verify:true] raises on violations. *)

module D = Slo_core.Driver
module W = Slo_profile.Weights
module Suite = Slo_suite.Suite

let src =
  {|
struct s {
  long a;
  long b;
  double c;
};
struct s *tab;
long acc;

long twice(long x) {
  return x + x;
}

int main() {
  long i;
  tab = (struct s*)malloc(8 * sizeof(struct s));
  for (i = 0; i < 8; i++) {
    tab[i].a = i;
    tab[i].b = i + 1;
    tab[i].c = i * 0.5;
  }
  for (i = 0; i < 8; i++) {
    acc = acc + tab[i].a + twice(tab[i].b);
  }
  printf("%ld\n", acc);
  return 0;
}
|}

let compiled () = D.compile src

let all_instrs (prog : Ir.program) =
  List.concat_map
    (fun (f : Ir.func) ->
      List.concat_map (fun (b : Ir.block) -> b.Ir.instrs) f.Ir.fblocks)
    prog.Ir.funcs

let first_matching prog pred =
  match List.find_opt pred (all_instrs prog) with
  | Some i -> i
  | None -> Alcotest.fail "test setup: no matching instruction in program"

let main_func (prog : Ir.program) =
  List.find (fun (f : Ir.func) -> String.equal f.Ir.fname "main") prog.Ir.funcs

let first_in_main prog pred =
  let f = main_func prog in
  let instrs =
    List.concat_map (fun (b : Ir.block) -> b.Ir.instrs) f.Ir.fblocks
  in
  match List.find_opt pred instrs with
  | Some i -> i
  | None -> Alcotest.fail "test setup: no matching instruction in main"

(* the broken program must report an error matching [pred]; a clean or
   differently-classified report is a failure either way *)
let expect_kind what pred prog =
  let errs = Verify.program prog in
  if not (List.exists (fun (e : Verify.error) -> pred e.Verify.kind) errs)
  then
    Alcotest.failf "expected %s, verifier reported:\n%s" what
      (if errs = [] then "  (nothing)" else Verify.report errs)

let clean_baseline () =
  let prog = compiled () in
  Alcotest.(check bool) "baseline verifies" true (Verify.ok prog);
  Alcotest.(check int) "no errors" 0 (List.length (Verify.program prog))

let removed_struct () =
  let prog = compiled () in
  Structs.remove prog.Ir.structs "s";
  expect_kind "Unknown_struct s"
    (function Verify.Unknown_struct "s" -> true | _ -> false)
    prog

let field_index_out_of_range () =
  let prog = compiled () in
  let i =
    first_matching prog (fun i ->
        match i.Ir.idesc with Ir.Ifieldaddr _ -> true | _ -> false)
  in
  (match i.Ir.idesc with
  | Ir.Ifieldaddr (r, b, s, _) -> i.Ir.idesc <- Ir.Ifieldaddr (r, b, s, 99)
  | _ -> assert false);
  expect_kind "Field_out_of_range (s, 99)"
    (function Verify.Field_out_of_range ("s", 99) -> true | _ -> false)
    prog

let dangling_access_tag () =
  let prog = compiled () in
  let i =
    first_matching prog (fun i ->
        match i.Ir.idesc with Ir.Iload (_, _, _, Some _) -> true | _ -> false)
  in
  (match i.Ir.idesc with
  | Ir.Iload (r, a, t, Some acc) ->
    i.Ir.idesc <- Ir.Iload (r, a, t, Some { acc with Ir.astruct = "ghost" })
  | _ -> assert false);
  expect_kind "Unknown_struct ghost"
    (function Verify.Unknown_struct "ghost" -> true | _ -> false)
    prog

let bad_branch_target () =
  let prog = compiled () in
  let f = main_func prog in
  let b =
    List.find
      (fun (b : Ir.block) ->
        match b.Ir.btermin with Ir.Tbr _ -> true | _ -> false)
      f.Ir.fblocks
  in
  (match b.Ir.btermin with
  | Ir.Tbr (c, t, _) -> b.Ir.btermin <- Ir.Tbr (c, t, 99)
  | _ -> assert false);
  expect_kind "Bad_branch_target 99"
    (function Verify.Bad_branch_target 99 -> true | _ -> false)
    prog

let undefined_register () =
  let prog = compiled () in
  let f = main_func prog in
  (* a register that exists (is below [next_reg]) but no instruction of
     the function ever defines — the shape a mis-rewritten access chain
     leaves behind when a transform drops a fieldaddr *)
  let r = Ir.fresh_reg f in
  let i =
    first_in_main prog (fun i ->
        match i.Ir.idesc with Ir.Iload _ -> true | _ -> false)
  in
  (match i.Ir.idesc with
  | Ir.Iload (d, _, t, a) -> i.Ir.idesc <- Ir.Iload (d, Ir.Oreg r, t, a)
  | _ -> assert false);
  expect_kind "Undefined_register"
    (function Verify.Undefined_register r' -> r' = r | _ -> false)
    prog

let register_out_of_range () =
  let prog = compiled () in
  let f = main_func prog in
  let bogus = f.Ir.next_reg + 50 in
  let i =
    first_in_main prog (fun i ->
        match i.Ir.idesc with Ir.Iload _ -> true | _ -> false)
  in
  (match i.Ir.idesc with
  | Ir.Iload (d, _, t, a) -> i.Ir.idesc <- Ir.Iload (d, Ir.Oreg bogus, t, a)
  | _ -> assert false);
  expect_kind "Reg_out_of_range"
    (function Verify.Reg_out_of_range r -> r = bogus | _ -> false)
    prog

let unknown_global () =
  let prog = compiled () in
  let i =
    first_matching prog (fun i ->
        match i.Ir.idesc with Ir.Iaddrglob _ -> true | _ -> false)
  in
  (match i.Ir.idesc with
  | Ir.Iaddrglob (r, _) -> i.Ir.idesc <- Ir.Iaddrglob (r, "ghost_global")
  | _ -> assert false);
  expect_kind "Unknown_global ghost_global"
    (function Verify.Unknown_global "ghost_global" -> true | _ -> false)
    prog

let arity_mismatch () =
  let prog = compiled () in
  let i =
    first_matching prog (fun i ->
        match i.Ir.idesc with
        | Ir.Icall (_, Ir.Cdirect "twice", _) -> true
        | _ -> false)
  in
  (match i.Ir.idesc with
  | Ir.Icall (r, c, args) ->
    i.Ir.idesc <- Ir.Icall (r, c, args @ [ Ir.Oimm 1L ])
  | _ -> assert false);
  expect_kind "Arity_mismatch (twice, 1, 2)"
    (function Verify.Arity_mismatch ("twice", 1, 2) -> true | _ -> false)
    prog

let duplicate_block () =
  let prog = compiled () in
  let f = main_func prog in
  f.Ir.fblocks <- f.Ir.fblocks @ [ List.hd f.Ir.fblocks ];
  expect_kind "Duplicate_block 0"
    (function Verify.Duplicate_block 0 -> true | _ -> false)
    prog

(* ------------------------------------------------------------------ *)
(* Positive: silent on the whole roster, before and after transforming *)
(* ------------------------------------------------------------------ *)

let tiny (e : Suite.entry) = List.map (fun a -> max 1 (a / 8)) e.train_args

let suite_clean (e : Suite.entry) () =
  let prog = D.compile e.source in
  (match Verify.program prog with
  | [] -> ()
  | errs -> Alcotest.failf "lowered IR ill-formed:\n%s" (Verify.report errs));
  (* [~verify:true] re-checks the rewritten copy inside the driver and
     raises Verify.Ill_formed on any violation *)
  ignore
    (D.evaluate ~args:(tiny e) ~verify:true ~scheme:W.ISPBO ~feedback:None
       prog)

let suite_tests =
  List.map
    (fun (e : Suite.entry) ->
      Alcotest.test_case e.name `Quick (suite_clean e))
    (Suite.roster @ Suite.case_studies)

let () =
  Alcotest.run "verify"
    [
      ( "broken IR is reported",
        [
          Alcotest.test_case "clean baseline" `Quick clean_baseline;
          Alcotest.test_case "struct removed while referenced" `Quick
            removed_struct;
          Alcotest.test_case "field index out of range" `Quick
            field_index_out_of_range;
          Alcotest.test_case "dangling access tag" `Quick dangling_access_tag;
          Alcotest.test_case "branch to missing block" `Quick bad_branch_target;
          Alcotest.test_case "used register never defined" `Quick
            undefined_register;
          Alcotest.test_case "register out of range" `Quick
            register_out_of_range;
          Alcotest.test_case "unknown global" `Quick unknown_global;
          Alcotest.test_case "call arity mismatch" `Quick arity_mismatch;
          Alcotest.test_case "duplicate block id" `Quick duplicate_block;
        ] );
      ("suite programs verify clean", suite_tests);
    ]
