(* VM: memory model, interpreter semantics, builtins, hooks.

   Every semantics/builtin/hook test runs twice — once under the
   tree-walking reference interpreter and once under the
   closure-compiled engine — so the whole suite doubles as a
   per-feature backend-equivalence check (the differential oracle in
   test_suite/test_fuzz covers whole programs; this pins each language
   feature individually). *)

module Memory = Slo_vm.Memory
module Backend = Slo_vm.Backend

let run ?args b src = Backend.run_program ?args b (Lower.lower_source src)

let exit_of ?args b src = (run ?args b src).Backend.exit_code
let out_of ?args b src = (run ?args b src).Backend.output

(* ------------------------- memory ------------------------- *)

let mem_roundtrip () =
  let m = Memory.create () in
  let a = Memory.alloc_heap m ~size:64 ~zero:true in
  Memory.store_int m ~addr:a ~size:8 (-123456789);
  Alcotest.(check int) "i64" (-123456789) (Memory.load_int m ~addr:a ~size:8);
  Memory.store_int m ~addr:(a + 8) ~size:1 (-5);
  Alcotest.(check int) "i8 sign extend" (-5)
    (Memory.load_int m ~addr:(a + 8) ~size:1);
  Memory.store_int m ~addr:(a + 10) ~size:2 70000;
  Alcotest.(check int) "i16 truncates" (70000 - 65536)
    (Memory.load_int m ~addr:(a + 10) ~size:2);
  Memory.store_f64 m ~addr:(a + 16) 3.25;
  Alcotest.(check (float 0.0)) "f64" 3.25 (Memory.load_f64 m ~addr:(a + 16));
  Memory.store_f32 m ~addr:(a + 24) 1.5;
  Alcotest.(check (float 0.0)) "f32" 1.5 (Memory.load_f32 m ~addr:(a + 24))

let mem_faults () =
  let m = Memory.create () in
  (match Memory.load_int m ~addr:4 ~size:8 with
  | exception Memory.Fault _ -> ()
  | _ -> Alcotest.fail "null page access should fault");
  let a = Memory.alloc_heap m ~size:16 ~zero:false in
  Memory.free_heap m a;
  (match Memory.free_heap m a with
  | exception Memory.Fault _ -> ()
  | () -> Alcotest.fail "double free should fault");
  match Memory.free_heap m 0x999999 with
  | exception Memory.Fault _ -> ()
  | () -> Alcotest.fail "bad free should fault"

let mem_strings () =
  let m = Memory.create () in
  let a = Memory.alloc_heap m ~size:32 ~zero:true in
  Memory.write_string m a "hello";
  Alcotest.(check string) "roundtrip" "hello" (Memory.read_string m a)

(* ------------------------- semantics ------------------------- *)

let arith b () =
  Alcotest.(check int) "int arith" 17
    (exit_of b "int main() { return 3 + 4 * 5 - 6 / 2 - 10 % 7; }");
  (* C precedence: << binds tighter than &, & tighter than ^, ^ than | *)
  Alcotest.(check int) "shift/mask" 23
    (exit_of b "int main() { return (1 << 4 | 5 & 7 ^ 2); }");
  Alcotest.(check int) "unary" 1
    (exit_of b "int main() { return -(-1) + !0 + ~0; }");
  Alcotest.(check int) "cmp chain" 1
    (exit_of b "int main() { return (1 < 2) == (3 >= 3); }")

let float_semantics b () =
  Alcotest.(check string) "div and conv" "3.5 3\n"
    (out_of b
       "int main() { double d; int i; d = 7.0 / 2.0; i = (int)d;\n\
        printf(\"%g %d\\n\", d, i); return 0; }");
  Alcotest.(check string) "builtins" "5 2.718 1 8\n"
    (out_of b
       "int main() { printf(\"%g %.3f %g %g\\n\", sqrt(25.0), exp(1.0),\n\
        fabs(-1.0), pow(2.0, 3.0)); return 0; }")

(* the printf spec machinery: widths, flags, precision, every supported
   conversion, a trailing '%' and the literal escape *)
let printf_specs b () =
  Alcotest.(check string) "width and flags" "|   42|42   |00042|+42|\n"
    (out_of b
       "int main() { printf(\"|%5d|%-5d|%05d|%+d|\\n\", 42, 42, 42, 42);\n\
        return 0; }");
  Alcotest.(check string) "precision and conversions" "2a*x*ok*3.14*1e+01\n"
    (out_of b
       "int main() { printf(\"%x*%c*%s*%.2f*%.0e\\n\", 42, 120, \"ok\",\n\
        3.14159, 10.0); return 0; }");
  Alcotest.(check string) "long modifier skipped" "7 7\n"
    (out_of b "int main() { printf(\"%ld %lu\\n\", 7, 7); return 0; }");
  Alcotest.(check string) "literal percent" "100% done\n"
    (out_of b "int main() { printf(\"100%% done\\n\"); return 0; }");
  (* a trailing incomplete spec is emitted as the bare '%' *)
  Alcotest.(check string) "trailing percent" "x%"
    (out_of b "int main() { printf(\"x%\"); return 0; }");
  match run b "int main() { printf(\"%q\", 1); return 0; }" with
  | exception Backend.Runtime_error msg ->
    Alcotest.(check bool) "unsupported conversion named" true
      (Astring.String.is_infix ~affix:"%q" msg)
  | _ -> Alcotest.fail "expected runtime error for %q"

let control_flow b () =
  Alcotest.(check int) "fib 10" 55
    (exit_of b
       "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\n\
        int main() { return fib(10); }");
  Alcotest.(check int) "break/continue" 25
    (exit_of b
       "int main() { int i; int s = 0;\n\
        for (i = 0; i < 100; i++) { if (i % 2 == 0) { continue; }\n\
        if (i > 9) { break; } s = s + i; } return s; }");
  Alcotest.(check int) "do-while" 10
    (exit_of b
       "int main() { int i = 0; do { i = i + 2; } while (i < 10); return i; }");
  Alcotest.(check int) "ternary" 7
    (exit_of b "int main() { int a = 3; return a > 2 ? 7 : 9; }")

let pointers_structs b () =
  Alcotest.(check int) "linked list sum" 10
    (exit_of b
       "struct n { int v; struct n *next; };\n\
        int main() { struct n *h; struct n *c; int i; int s; h = (struct n*)0;\n\
        for (i = 1; i <= 4; i++) {\n\
        c = (struct n*)malloc(1 * sizeof(struct n));\n\
        c->v = i; c->next = h; h = c; }\n\
        s = 0; while (h != (struct n*)0) { s = s + h->v; h = h->next; }\n\
        return s; }");
  Alcotest.(check int) "pointer arithmetic" 30
    (exit_of b
       "int main() { int *a; int i; int s; a = (int*)malloc(10 * sizeof(int));\n\
        for (i = 0; i < 10; i++) { a[i] = i; }\n\
        s = *(a + 3) + a[9] * 3; return s; }");
  Alcotest.(check int) "address of local" 42
    (exit_of b
       "int main() { int x; int *p; x = 0; p = &x; *p = 42; return x; }")

let bitfields_vm b () =
  Alcotest.(check string) "bitfield pack/unpack" "5 3 5 3\n"
    (out_of b
       "struct f { int a : 3; int b : 4; };\n\
        struct f *p;\n\
        int main() { p = (struct f*)malloc(2 * sizeof(struct f));\n\
        p[0].a = 5; p[0].b = 3; p[1].a = 5; p[1].b = 3;\n\
        printf(\"%d %d %d %d\\n\", p[0].a, p[0].b, p[1].a, p[1].b);\n\
        return 0; }")

let memops b () =
  Alcotest.(check int) "memset/memcpy" 0
    (exit_of b
       "int main() { char *a; char *b; int i; int bad = 0;\n\
        a = (char*)malloc(64); b = (char*)malloc(64);\n\
        memset(a, 7, 64); memcpy(b, a, 64);\n\
        for (i = 0; i < 64; i++) { if (b[i] != 7) { bad = 1; } }\n\
        return bad; }");
  Alcotest.(check int) "realloc preserves" 15
    (exit_of b
       "int main() { long *a; int i; long s;\n\
        a = (long*)malloc(4 * sizeof(long));\n\
        for (i = 0; i < 4; i++) { a[i] = i; }\n\
        a = (long*)realloc(a, 8 * sizeof(long));\n\
        a[4] = 9; s = 0;\n\
        for (i = 0; i < 5; i++) { s = s + a[i]; } return (int)s; }")

let indirect_calls b () =
  Alcotest.(check int) "function pointer" 12
    (exit_of b
       "typedef int (*binop)(int, int);\n\
        int add(int a, int b) { return a + b; }\n\
        int mul(int a, int b) { return a * b; }\n\
        int apply(binop f, int a, int b) { return f(a, b); }\n\
        int main() { binop f; f = (&add); return apply(f, 2, 4) + apply((&mul), 2, 3); }")

let deterministic_rand b () =
  let src =
    "int main() { int i; long s = 0; srand(7);\n\
     for (i = 0; i < 5; i++) { s = s + rand() % 100; }\n\
     printf(\"%ld\\n\", s); return 0; }"
  in
  Alcotest.(check string) "same seed, same stream" (out_of b src) (out_of b src)

let args_passing b () =
  Alcotest.(check int) "main args" 7
    (exit_of ~args:[ 3; 4 ] b "int main(int a, int b) { return a + b; }")

let runtime_errors b () =
  let expect_error src =
    match run b src with
    | exception Backend.Runtime_error _ -> ()
    | _ -> Alcotest.failf "expected runtime error for %S" src
  in
  expect_error "int main() { int *p; p = (int*)0; return *p; }";
  expect_error "int main() { return 1 / 0; }";
  (* the step limit catches runaway programs *)
  let vm =
    Backend.create ~max_steps:10_000 b
      (Lower.lower_source "int main() { while (1) { } return 0; }")
  in
  match Backend.run vm with
  | exception Backend.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected step-limit error"

(* a parameter without a stack slot (malformed IR) must be reported as a
   named runtime error, not a bare [Not_found] *)
let missing_param_slot b () =
  let prog =
    Lower.lower_source
      "int f(int x) { return x; } int main() { return f(3); }"
  in
  let f = List.find (fun (f : Ir.func) -> f.fname = "f") prog.Ir.funcs in
  f.Ir.flocals <-
    List.filter (fun (n, _) -> not (String.equal n "x")) f.Ir.flocals;
  match Backend.run_program b prog with
  | exception Backend.Runtime_error msg ->
    Alcotest.(check bool) "names the parameter and function" true
      (Astring.String.is_infix ~affix:"parameter 'x' of function 'f'" msg)
  | _ -> Alcotest.fail "expected runtime error for missing slot"

let step_counting b () =
  let prog = Lower.lower_source "int main() { return 0; }" in
  let r = Backend.run_program b prog in
  Alcotest.(check bool) "counts steps" true (r.Backend.steps > 0 && r.Backend.steps < 10)

let mem_hook_sees_accesses b () =
  let prog =
    Lower.lower_source
      "struct s { double d; int i; };\n\
       struct s *p;\n\
       int main() { p = (struct s*)malloc(2 * sizeof(struct s));\n\
       p[0].d = 1.5; p[0].i = 2; return p[0].i; }"
  in
  let float_writes = ref 0 and int_ops = ref 0 in
  let vm =
    Backend.create
      ~mem_hook:(fun _addr size write is_float _iid ->
        if is_float && write then incr float_writes;
        if (not is_float) && size = 4 then incr int_ops)
      b prog
  in
  ignore (Backend.run vm);
  Alcotest.(check int) "one float store" 1 !float_writes;
  Alcotest.(check bool) "int field traffic seen" true (!int_ops >= 2)

let edge_hook_counts b () =
  let prog =
    Lower.lower_source
      "int main() { int i; int s = 0;\n\
       for (i = 0; i < 10; i++) { s = s + i; } return s; }"
  in
  let entries = ref 0 and edges = ref 0 in
  let vm =
    Backend.create
      ~edge_hook:(fun _f src _dst -> if src = -1 then incr entries else incr edges)
      b prog
  in
  let r = Backend.run vm in
  Alcotest.(check int) "result" 45 r.Backend.exit_code;
  Alcotest.(check int) "one entry" 1 !entries;
  (* loop executes 10 times: header->body 10, body->step 10, step->header 10,
     header->exit 1, entry->header 1 => 32 *)
  Alcotest.(check int) "taken edges" 32 !edges

(* ------------------------- suites ------------------------- *)

let semantics_cases b =
  [
    Alcotest.test_case "arith" `Quick (arith b);
    Alcotest.test_case "floats" `Quick (float_semantics b);
    Alcotest.test_case "printf specs" `Quick (printf_specs b);
    Alcotest.test_case "control flow" `Quick (control_flow b);
    Alcotest.test_case "pointers+structs" `Quick (pointers_structs b);
    Alcotest.test_case "bitfields" `Quick (bitfields_vm b);
    Alcotest.test_case "memops" `Quick (memops b);
    Alcotest.test_case "indirect calls" `Quick (indirect_calls b);
    Alcotest.test_case "deterministic rand" `Quick (deterministic_rand b);
    Alcotest.test_case "args" `Quick (args_passing b);
    Alcotest.test_case "runtime errors" `Quick (runtime_errors b);
    Alcotest.test_case "missing param slot" `Quick (missing_param_slot b);
  ]

let hooks_cases b =
  [
    Alcotest.test_case "step counting" `Quick (step_counting b);
    Alcotest.test_case "mem hook" `Quick (mem_hook_sees_accesses b);
    Alcotest.test_case "edge hook" `Quick (edge_hook_counts b);
  ]

let () =
  Alcotest.run "vm"
    [
      ( "memory",
        [
          Alcotest.test_case "roundtrip" `Quick mem_roundtrip;
          Alcotest.test_case "faults" `Quick mem_faults;
          Alcotest.test_case "strings" `Quick mem_strings;
        ] );
      ("semantics[walk]", semantics_cases Backend.Walk);
      ("semantics[closure]", semantics_cases Backend.Closure);
      ("semantics[superblock]", semantics_cases Backend.Superblock);
      ("hooks[walk]", hooks_cases Backend.Walk);
      ("hooks[closure]", hooks_cases Backend.Closure);
      ("hooks[superblock]", hooks_cases Backend.Superblock);
    ]
