(* Pipeline fuzzing: generate random Mini-C programs over a random struct,
   apply random (but well-formed) transformation specs, and require
   byte-identical program output. This is the strongest correctness
   property the BE has: any mis-rewritten field access, allocation site or
   free changes the printed checksums. *)

module D = Slo_core.Driver
module H = Slo_core.Heuristics
module T = Slo_core.Transform
module W = Slo_profile.Weights

(* ------------------------------------------------------------------ *)
(* Random program generation                                           *)
(* ------------------------------------------------------------------ *)

type fuzz_prog = {
  src : string;
  nfields : int;
  read_fields : int list;  (* fields that are read somewhere *)
}

let field_ty_name i = match i mod 3 with
  | 0 -> "long"
  | 1 -> "double"
  | _ -> "int"

let gen_prog : fuzz_prog QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 2 9 >>= fun nfields ->
  int_range 2 5 >>= fun nloops ->
  int_range 10 60 >>= fun n_elems ->
  (* each loop reads/writes a random non-empty subset of fields *)
  list_repeat nloops
    (pair (int_range 0 ((1 lsl nfields) - 1)) (int_range 1 4))
  >>= fun loop_specs ->
  bool >>= fun use_free ->
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "struct s {\n";
  for i = 0 to nfields - 1 do
    pf "  %s f%d;\n" (field_ty_name i) i
  done;
  pf "};\n";
  pf "struct s *tab;\nlong acc;\ndouble facc;\n";
  pf "int main() {\n  long i; long r;\n";
  pf "  tab = (struct s*)malloc(%d * sizeof(struct s));\n" n_elems;
  pf "  for (i = 0; i < %d; i++) {\n" n_elems;
  for i = 0 to nfields - 1 do
    match i mod 3 with
    | 1 -> pf "    tab[i].f%d = i * 0.5 + %d.0;\n" i i
    | _ -> pf "    tab[i].f%d = i * %d + 1;\n" i (i + 2)
  done;
  pf "  }\n";
  let read_fields = ref [] in
  List.iteri
    (fun li (mask, rounds) ->
      let fields =
        List.filter (fun i -> mask land (1 lsl i) <> 0)
          (List.init nfields Fun.id)
      in
      let fields = if fields = [] then [ li mod nfields ] else fields in
      pf "  for (r = 0; r < %d; r++) {\n" rounds;
      pf "    for (i = 0; i < %d; i = i + %d) {\n" n_elems ((li mod 3) + 1);
      List.iter
        (fun fi ->
          read_fields := fi :: !read_fields;
          match fi mod 3 with
          | 1 -> pf "      facc = facc + tab[i].f%d;\n" fi
          | _ ->
            pf "      acc = acc + tab[i].f%d;\n" fi;
            if (li + fi) mod 2 = 0 then
              pf "      tab[i].f%d = tab[i].f%d + 1;\n" fi fi)
        fields;
      pf "    }\n  }\n")
    loop_specs;
  if use_free then pf "  free(tab);\n";
  pf "  printf(\"%%ld %%g\\n\", acc, facc);\n  return 0;\n}\n";
  return
    { src = Buffer.contents buf; nfields;
      read_fields = List.sort_uniq compare !read_fields }

let arbitrary_prog =
  QCheck.make gen_prog ~print:(fun p -> p.src)

let run_src src = (Slo_vm.Interp.run_program (D.compile src)).output

let preserved prog plans =
  let compiled = D.compile prog.src in
  let before = Slo_vm.Interp.run_program compiled in
  let transformed = D.transform_with_plans compiled plans in
  let after = Slo_vm.Interp.run_program transformed in
  String.equal before.output after.output

(* random split: partition fields into hot/cold/dead (dead = never read) *)
let prop_random_split =
  QCheck.Test.make ~count:60 ~name:"random split preserves output"
    (QCheck.pair arbitrary_prog QCheck.(int_range 0 10_000))
    (fun (p, seed) ->
      let all = List.init p.nfields Fun.id in
      let dead =
        List.filter (fun i -> not (List.mem i p.read_fields)) all
      in
      let live = List.filter (fun i -> List.mem i p.read_fields) all in
      (* split the live fields pseudo-randomly by seed *)
      let hot, cold =
        List.partition (fun i -> (seed lsr (i mod 12)) land 1 = 0) live
      in
      let hot, cold = if hot = [] then (cold, hot) else (hot, cold) in
      QCheck.assume (hot <> []);
      preserved p
        [ H.Split { T.s_typ = "s"; s_hot = hot; s_cold = cold; s_dead = dead } ])

let prop_random_peel =
  QCheck.Test.make ~count:60 ~name:"random peel preserves output"
    arbitrary_prog
    (fun p ->
      let compiled = D.compile p.src in
      QCheck.assume
        (T.peel_feasible compiled ~typ:"s" ~globals:[ "tab" ]);
      let all = List.init p.nfields Fun.id in
      let dead = List.filter (fun i -> not (List.mem i p.read_fields)) all in
      let live = List.filter (fun i -> List.mem i p.read_fields) all in
      QCheck.assume (live <> []);
      preserved p
        [ H.Peel { T.p_typ = "s"; p_live = live; p_dead = dead;
                   p_globals = [ "tab" ] } ])

let prop_random_rebuild =
  QCheck.Test.make ~count:60 ~name:"random reorder preserves output"
    (QCheck.pair arbitrary_prog QCheck.(int_range 0 10_000))
    (fun (p, seed) ->
      let all = List.init p.nfields Fun.id in
      let dead = List.filter (fun i -> not (List.mem i p.read_fields)) all in
      let live = List.filter (fun i -> List.mem i p.read_fields) all in
      QCheck.assume (live <> []);
      (* a seed-dependent permutation *)
      let order =
        List.sort
          (fun a b -> compare ((a * seed) mod 101) ((b * seed) mod 101))
          live
      in
      preserved p
        [ H.Rebuild { T.r_typ = "s"; r_order = order; r_dead = dead } ])

let prop_driver_end_to_end =
  QCheck.Test.make ~count:40 ~name:"framework decision preserves output"
    arbitrary_prog
    (fun p ->
      let compiled = D.compile p.src in
      let leg, aff = D.analyze compiled ~scheme:W.ISPBO ~feedback:None in
      let plans = H.plans (H.decide compiled leg aff ~scheme:W.ISPBO) in
      let before = run_src p.src in
      let after =
        (Slo_vm.Interp.run_program (D.transform_with_plans compiled plans))
          .output
      in
      String.equal before after)

let () =
  Alcotest.run "fuzz"
    [
      ( "pipeline",
        [
          QCheck_alcotest.to_alcotest prop_random_split;
          QCheck_alcotest.to_alcotest prop_random_peel;
          QCheck_alcotest.to_alcotest prop_random_rebuild;
          QCheck_alcotest.to_alcotest prop_driver_end_to_end;
        ] );
    ]
