(* Pipeline fuzzing: generate random Mini-C programs over a random struct,
   apply random (but well-formed) transformation specs, and hand the pair
   to the differential oracle (Slo_suite.Oracle): both IRs must pass the
   well-formedness verifier, the outputs must be byte-identical, and every
   live field must be touched the exact same number of times.

   Programs are generated from a small structured [spec] so QCheck can
   shrink failures: a counterexample minimizes to the fewest loops, fields
   and elements that still fail, and is printed as Mini-C source text.

   Set QCHECK_LONG=1 (e.g. via `make fuzz`) for a 10x iteration count. *)

module D = Slo_core.Driver
module H = Slo_core.Heuristics
module T = Slo_core.Transform
module W = Slo_profile.Weights
module O = Slo_suite.Oracle

(* ------------------------------------------------------------------ *)
(* Random program specs                                                *)
(* ------------------------------------------------------------------ *)

type spec = {
  sp_nfields : int;  (* fields of struct s: f0 .. f{n-1} *)
  sp_nelems : int;   (* elements in each anchor array *)
  sp_loops : (int * int) list;  (* per loop nest: field mask, rounds *)
  sp_second : bool;  (* a second anchor global of the same type *)
  sp_free : bool;    (* free the arrays at the end *)
}

let field_ty_name i = match i mod 3 with
  | 0 -> "long"
  | 1 -> "double"
  | _ -> "int"

(* fields read by the loops of [sp] (the rest are written at init time
   only, i.e. dead) *)
let read_fields sp =
  let fields_of_loop li (mask, _rounds) =
    let fs =
      List.filter (fun i -> mask land (1 lsl i) <> 0)
        (List.init sp.sp_nfields Fun.id)
    in
    if fs = [] then [ li mod sp.sp_nfields ] else fs
  in
  List.concat (List.mapi fields_of_loop sp.sp_loops)
  |> List.sort_uniq compare

let render sp : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let tabs = if sp.sp_second then [ "tab"; "tab2" ] else [ "tab" ] in
  pf "struct s {\n";
  for i = 0 to sp.sp_nfields - 1 do
    pf "  %s f%d;\n" (field_ty_name i) i
  done;
  pf "};\n";
  List.iter (fun t -> pf "struct s *%s;\n" t) tabs;
  pf "long acc;\ndouble facc;\n";
  pf "int main() {\n  long i; long r;\n";
  List.iteri
    (fun ti t ->
      pf "  %s = (struct s*)malloc(%d * sizeof(struct s));\n" t sp.sp_nelems;
      pf "  for (i = 0; i < %d; i++) {\n" sp.sp_nelems;
      for i = 0 to sp.sp_nfields - 1 do
        match i mod 3 with
        | 1 -> pf "    %s[i].f%d = i * 0.5 + %d.0;\n" t i (i + ti)
        | _ -> pf "    %s[i].f%d = i * %d + %d;\n" t i (i + 2) (ti + 1)
      done;
      pf "  }\n")
    tabs;
  List.iteri
    (fun li (mask, rounds) ->
      let fields =
        let fs =
          List.filter (fun i -> mask land (1 lsl i) <> 0)
            (List.init sp.sp_nfields Fun.id)
        in
        if fs = [] then [ li mod sp.sp_nfields ] else fs
      in
      pf "  for (r = 0; r < %d; r++) {\n" rounds;
      pf "    for (i = 0; i < %d; i = i + %d) {\n" sp.sp_nelems ((li mod 3) + 1);
      List.iter
        (fun t ->
          List.iter
            (fun fi ->
              match fi mod 3 with
              | 1 -> pf "      facc = facc + %s[i].f%d;\n" t fi
              | _ ->
                pf "      acc = acc + %s[i].f%d;\n" t fi;
                if (li + fi) mod 2 = 0 then
                  pf "      %s[i].f%d = %s[i].f%d + 1;\n" t fi t fi)
            fields)
        tabs;
      pf "    }\n  }\n")
    sp.sp_loops;
  if sp.sp_free then List.iter (fun t -> pf "  free(%s);\n" t) tabs;
  pf "  printf(\"%%ld %%g\\n\", acc, facc);\n  return 0;\n}\n";
  Buffer.contents buf

let gen_spec : spec QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 2 9 >>= fun sp_nfields ->
  int_range 2 5 >>= fun nloops ->
  int_range 10 60 >>= fun sp_nelems ->
  list_repeat nloops
    (pair (int_range 0 ((1 lsl sp_nfields) - 1)) (int_range 1 4))
  >>= fun sp_loops ->
  bool >>= fun sp_second ->
  bool >>= fun sp_free ->
  return { sp_nfields; sp_nelems; sp_loops; sp_second; sp_free }

(* shrink toward the simplest failing program: fewer loops first, then a
   single anchor, no free, fewer elements, fewer fields, smaller masks *)
let shrink_spec sp yield =
  QCheck.Shrink.list_spine sp.sp_loops (fun l ->
      yield { sp with sp_loops = l });
  if sp.sp_second then yield { sp with sp_second = false };
  if sp.sp_free then yield { sp with sp_free = false };
  QCheck.Shrink.int sp.sp_nelems (fun n ->
      if n >= 1 then yield { sp with sp_nelems = n });
  QCheck.Shrink.int sp.sp_nfields (fun n ->
      if n >= 2 then yield { sp with sp_nfields = n });
  QCheck.Shrink.list_elems
    (QCheck.Shrink.pair QCheck.Shrink.int QCheck.Shrink.int)
    sp.sp_loops
    (fun l -> yield { sp with sp_loops = l })

(* counterexamples print as Mini-C source, not an AST or spec dump *)
let arbitrary_spec =
  QCheck.make gen_spec ~print:render ~shrink:shrink_spec

let anchors sp = if sp.sp_second then [ "tab"; "tab2" ] else [ "tab" ]

let iters n =
  match Sys.getenv_opt "QCHECK_LONG" with Some _ -> n * 10 | None -> n

let oracle_holds src plans =
  let rep = O.run_source src plans in
  if O.ok rep then true
  else QCheck.Test.fail_reportf "%s" (O.describe rep)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* random split: partition live fields into hot/cold by seed; fields never
   read are dead *)
let prop_random_split =
  QCheck.Test.make ~count:(iters 60) ~name:"random split preserves behaviour"
    (QCheck.pair arbitrary_spec QCheck.(int_range 0 10_000))
    (fun (sp, seed) ->
      let all = List.init sp.sp_nfields Fun.id in
      let read = read_fields sp in
      let dead = List.filter (fun i -> not (List.mem i read)) all in
      let hot, cold =
        List.partition (fun i -> (seed lsr (i mod 12)) land 1 = 0) read
      in
      let hot, cold = if hot = [] then (cold, hot) else (hot, cold) in
      QCheck.assume (hot <> []);
      oracle_holds (render sp)
        [ H.Split { T.s_typ = "s"; s_hot = hot; s_cold = cold; s_dead = dead } ])

(* random peel, including the two-anchor-global configuration; gated on
   the same feasibility test the heuristics use *)
let prop_random_peel =
  QCheck.Test.make ~count:(iters 60) ~name:"random peel preserves behaviour"
    arbitrary_spec
    (fun sp ->
      let src = render sp in
      let compiled = D.compile src in
      QCheck.assume
        (T.peel_feasible compiled ~typ:"s" ~globals:(anchors sp));
      let all = List.init sp.sp_nfields Fun.id in
      let read = read_fields sp in
      let dead = List.filter (fun i -> not (List.mem i read)) all in
      QCheck.assume (read <> []);
      oracle_holds src
        [ H.Peel { T.p_typ = "s"; p_live = read; p_dead = dead;
                   p_globals = anchors sp } ])

(* random dead-field removal + reordering *)
let prop_random_rebuild =
  QCheck.Test.make ~count:(iters 60)
    ~name:"random reorder+dead-removal preserves behaviour"
    (QCheck.pair arbitrary_spec QCheck.(int_range 0 10_000))
    (fun (sp, seed) ->
      let all = List.init sp.sp_nfields Fun.id in
      let read = read_fields sp in
      let dead = List.filter (fun i -> not (List.mem i read)) all in
      QCheck.assume (read <> []);
      (* a seed-dependent permutation *)
      let order =
        List.sort
          (fun a b -> compare ((a * seed) mod 101) ((b * seed) mod 101))
          read
      in
      oracle_holds (render sp)
        [ H.Rebuild { T.r_typ = "s"; r_order = order; r_dead = dead } ])

(* the full framework decision, oracle-checked *)
let prop_driver_end_to_end =
  QCheck.Test.make ~count:(iters 40)
    ~name:"framework decision passes the oracle" arbitrary_spec
    (fun sp ->
      let src = render sp in
      let compiled = D.compile src in
      let leg, aff = D.analyze compiled ~scheme:W.ISPBO ~feedback:None in
      let plans = H.plans (H.decide compiled leg aff ~scheme:W.ISPBO) in
      oracle_holds src plans)

(* the differential oracle turned on the VM itself: every generated
   program — and its framework-transformed rewrite — must produce
   byte-identical output, step counts and cache counters under the
   tree-walking and the closure-compiled backend *)
let backends_agree_or_report prog =
  match O.compare_backends ~config:Slo_cachesim.Hierarchy.small prog with
  | [] -> true
  | ms ->
    QCheck.Test.fail_reportf "%s"
      (String.concat "\n" (List.map O.string_of_backend_mismatch ms))

let prop_backends_agree =
  QCheck.Test.make ~count:(iters 40)
    ~name:"all backends agree with the walk reference" arbitrary_spec
    (fun sp ->
      let compiled = D.compile (render sp) in
      let leg, aff = D.analyze compiled ~scheme:W.ISPBO ~feedback:None in
      let plans = H.plans (H.decide compiled leg aff ~scheme:W.ISPBO) in
      let transformed = D.transform_with_plans compiled plans in
      backends_agree_or_report compiled
      && backends_agree_or_report transformed)

(* ------------------------------------------------------------------ *)
(* Linked-structure specs: programs over a self-referential struct      *)
(* built as a malloc'd ring of link fields, traversed pointer-chasing   *)
(* style. Clean instances must be shape-poolable and survive the pool   *)
(* rewrite under the oracle; aliased instances must be refuted.         *)
(* ------------------------------------------------------------------ *)

type link_spec = {
  lk_ndata : int;    (* data fields d0 .. d{n-1}, all long *)
  lk_nlinks : int;   (* link fields next0 .. next{k-1} *)
  lk_nelems : int;   (* ring size *)
  lk_walks : (int * int * int) list;
      (* per walk: link followed, data field read, steps *)
  lk_alias : bool;   (* stash &items[2].next0 in a global: not poolable *)
}

let render_link sp : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "struct lnode {\n";
  for i = 0 to sp.lk_ndata - 1 do
    pf "  long d%d;\n" i
  done;
  for j = 0 to sp.lk_nlinks - 1 do
    pf "  struct lnode *next%d;\n" j
  done;
  pf "};\n";
  pf "struct lnode *items;\n";
  if sp.lk_alias then pf "struct lnode **hook;\n";
  pf "long acc;\n";
  pf "int main() {\n  long i; long r;\n  struct lnode *p;\n";
  pf "  items = (struct lnode*)malloc(%d * sizeof(struct lnode));\n"
    sp.lk_nelems;
  pf "  for (i = 0; i < %d; i++) {\n" sp.lk_nelems;
  for i = 0 to sp.lk_ndata - 1 do
    pf "    items[i].d%d = i * %d + %d;\n" i (i + 2) (i + 1)
  done;
  for j = 0 to sp.lk_nlinks - 1 do
    pf "    items[i].next%d = items + ((i + %d) %% %d);\n" j (j + 1)
      sp.lk_nelems
  done;
  pf "  }\n";
  if sp.lk_alias then
    pf "  hook = &items[%d].next0;\n" (min 2 (sp.lk_nelems - 1));
  List.iter
    (fun (link, field, steps) ->
      let link = link mod sp.lk_nlinks and field = field mod sp.lk_ndata in
      pf "  p = items;\n";
      pf "  for (r = 0; r < %d; r++) {\n" steps;
      pf "    acc = acc + p->d%d;\n" field;
      if (link + field) mod 2 = 0 then
        pf "    p->d%d = p->d%d + 1;\n" field field;
      pf "    p = p->next%d;\n" link;
      pf "  }\n")
    sp.lk_walks;
  pf "  printf(\"%%ld\\n\", acc);\n  return 0;\n}\n";
  Buffer.contents buf

let gen_link_spec ~alias : link_spec QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 4 >>= fun lk_ndata ->
  int_range 1 3 >>= fun lk_nlinks ->
  int_range 3 40 >>= fun lk_nelems ->
  int_range 1 4 >>= fun nwalks ->
  list_repeat nwalks
    (triple (int_range 0 2) (int_range 0 3) (int_range 1 120))
  >>= fun lk_walks ->
  return { lk_ndata; lk_nlinks; lk_nelems; lk_walks; lk_alias = alias }

(* shrink toward the smallest failing linked program: fewer walks, then
   a smaller ring, fewer data and link fields, smaller walk triples *)
let shrink_link_spec sp yield =
  QCheck.Shrink.list_spine sp.lk_walks (fun w ->
      if w <> [] then yield { sp with lk_walks = w });
  QCheck.Shrink.int sp.lk_nelems (fun n ->
      if n >= 3 then yield { sp with lk_nelems = n });
  QCheck.Shrink.int sp.lk_ndata (fun n ->
      if n >= 1 then yield { sp with lk_ndata = n });
  QCheck.Shrink.int sp.lk_nlinks (fun n ->
      if n >= 1 then yield { sp with lk_nlinks = n });
  QCheck.Shrink.list_elems
    (QCheck.Shrink.triple QCheck.Shrink.int QCheck.Shrink.int
       QCheck.Shrink.int)
    sp.lk_walks
    (fun w ->
      if List.for_all (fun (_, _, s) -> s >= 1) w then
        yield { sp with lk_walks = w })

let arbitrary_link_spec ~alias =
  QCheck.make (gen_link_spec ~alias) ~print:render_link
    ~shrink:shrink_link_spec

(* a clean linked ring is provably poolable, and the rewrite is sound *)
let prop_random_pool =
  QCheck.Test.make ~count:(iters 40)
    ~name:"random linked ring pools and preserves behaviour"
    (arbitrary_link_spec ~alias:false)
    (fun sp ->
      let src = render_link sp in
      let compiled = D.compile src in
      let shp = Shape.analyze compiled in
      match Shape.verdict shp "lnode" with
      | Some v when v.Shape.v_poolable ->
        oracle_holds src
          [ H.Pool { T.po_typ = "lnode"; po_links = v.Shape.v_links } ]
      | Some v ->
        QCheck.Test.fail_reportf
          "clean linked ring judged not poolable: %s"
          (match v.Shape.v_witnesses with
          | w :: _ -> Shape.reason_name w.Shape.sw_reason ^ ": "
                      ^ w.sw_explain
          | [] -> "no witness")
      | None -> QCheck.Test.fail_reportf "lnode has no shape verdict")

(* the aliased twin must be refuted — a pool rewrite behind a live
   interior alias would be unsound *)
let prop_alias_refutes_pool =
  QCheck.Test.make ~count:(iters 40)
    ~name:"aliased link cell refutes pooling"
    (arbitrary_link_spec ~alias:true)
    (fun sp ->
      let compiled = D.compile (render_link sp) in
      let shp = Shape.analyze compiled in
      match Shape.verdict shp "lnode" with
      | Some v ->
        (not v.Shape.v_poolable) && v.Shape.v_witnesses <> []
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Mutation canaries: a deliberately injected transform bug must be     *)
(* caught by the oracle                                                 *)
(* ------------------------------------------------------------------ *)

let canary_src =
  "struct s { long a; long b; long c; };\n\
   struct s *tab;\n\
   int main() { long i; long acc = 0;\n\
   tab = (struct s*)malloc(40 * sizeof(struct s));\n\
   for (i = 0; i < 40; i++) { tab[i].a = i; tab[i].b = 7 * i; tab[i].c = 3; }\n\
   for (i = 0; i < 40; i++) { acc = acc + tab[i].a + tab[i].b; }\n\
   printf(\"%ld\\n\", acc); return 0; }"

let canary_plans = [ H.Rebuild { T.r_typ = "s"; r_order = [ 1; 0 ]; r_dead = [ 2 ] } ]

let mutate_transformed mutate =
  let prog = D.compile canary_src in
  let transformed = D.transform_with_plans prog canary_plans in
  mutate transformed;
  O.diff ~original:prog ~transformed ()

let first_instr_matching prog pick =
  let found = ref None in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) -> if !found = None && pick i then found := Some i)
            b.instrs)
        f.fblocks)
    prog.Ir.funcs;
  match !found with
  | Some i -> i
  | None -> Alcotest.fail "canary: expected instruction not found"

let oracle_catches_retargeted_access () =
  (* a mis-rewritten access chain: one field address points at the wrong
     slot; the output changes and the oracle must notice *)
  let rep =
    mutate_transformed (fun tr ->
        let i =
          first_instr_matching tr (fun i ->
              match i.idesc with
              | Ir.Ifieldaddr (_, _, "s", 0) -> true
              | _ -> false)
        in
        match i.idesc with
        | Ir.Ifieldaddr (r, b, s, _) -> i.idesc <- Ir.Ifieldaddr (r, b, s, 1)
        | _ -> assert false)
  in
  Alcotest.(check bool) "oracle rejects" false (O.ok rep)

let oracle_catches_dropped_store () =
  (* a lost store: conservation of per-field access counts must flag it
     even before the output diverges *)
  let rep =
    mutate_transformed (fun tr ->
        List.iter
          (fun (f : Ir.func) ->
            List.iter
              (fun (b : Ir.block) ->
                let dropped = ref false in
                b.instrs <-
                  List.filter
                    (fun (i : Ir.instr) ->
                      match i.idesc with
                      | Ir.Istore (_, _, _, Some _) when not !dropped ->
                        dropped := true;
                        false
                      | _ -> true)
                    b.instrs)
              f.fblocks)
          tr.Ir.funcs)
  in
  Alcotest.(check bool) "oracle rejects" false (O.ok rep)

let oracle_catches_dangling_struct () =
  (* a transformation that forgets to retarget a reference to the removed
     struct: the static verifier side of the oracle must reject it *)
  let rep =
    mutate_transformed (fun tr ->
        let i =
          first_instr_matching tr (fun i ->
              match i.idesc with
              | Ir.Ifieldaddr (_, _, "s", _) -> true
              | _ -> false)
        in
        match i.idesc with
        | Ir.Ifieldaddr (r, b, _, fi) ->
          i.idesc <- Ir.Ifieldaddr (r, b, "s__removed", fi)
        | _ -> assert false)
  in
  (match rep.r_failures with
  | [ O.Ill_formed_after _ ] -> ()
  | _ -> Alcotest.fail ("expected Ill_formed_after, got: " ^ O.describe rep));
  Alcotest.(check bool) "oracle rejects" false (O.ok rep)

let () =
  Alcotest.run "fuzz"
    [
      ( "pipeline",
        [
          QCheck_alcotest.to_alcotest prop_random_split;
          QCheck_alcotest.to_alcotest prop_random_peel;
          QCheck_alcotest.to_alcotest prop_random_rebuild;
          QCheck_alcotest.to_alcotest prop_driver_end_to_end;
          QCheck_alcotest.to_alcotest prop_backends_agree;
        ] );
      ( "linked structures",
        [
          QCheck_alcotest.to_alcotest prop_random_pool;
          QCheck_alcotest.to_alcotest prop_alias_refutes_pool;
        ] );
      ( "mutation canaries",
        [
          Alcotest.test_case "retargeted access caught" `Quick
            oracle_catches_retargeted_access;
          Alcotest.test_case "dropped store caught" `Quick
            oracle_catches_dropped_store;
          Alcotest.test_case "dangling struct caught" `Quick
            oracle_catches_dangling_struct;
        ] );
    ]
