(* Sampled cache simulation: exact-count unit tests for the period
   layout (detailed window / skip / warm-up), the O(1) bulk fast-forward,
   the stride = window ≡ exact property, and the roster accuracy gate
   that pins sampled estimates to exact simulation within fixed bounds. *)

module S = Slo_cachesim.Sampled
module Hierarchy = Slo_cachesim.Hierarchy
module Cache = Slo_cachesim.Cache
module D = Slo_core.Driver
module H = Slo_core.Heuristics
module W = Slo_profile.Weights
module Suite = Slo_suite.Suite

let acc ?(size = 4) ?(write = false) ?(is_float = false) t addr =
  S.access t ~addr ~size ~write ~is_float

(* ---------------- period layout, hand-computed counts ---------------- *)

(* window=2 stride=8 skip=4 → detailed [0,2), skip [2,6), warm [6,8) *)
let period_layout () =
  let t = S.create ~window:2 ~stride:8 ~skip:4 Hierarchy.small in
  let h = S.hierarchy t in
  let a = 4096 and b = 8192 in
  (* [0,2) detailed: cold miss on a, then a hit on the same line *)
  acc t a;
  acc t a;
  Alcotest.(check int) "window recorded" 2 (S.recorded_accesses t);
  Alcotest.(check int) "1 L1 miss" 1 (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "1 L1 hit" 1 (Cache.hits (Hierarchy.l1 h));
  (* [2,6) skip: counted, but neither counters nor cache state move *)
  for _ = 1 to 4 do
    acc t b
  done;
  Alcotest.(check int) "skip not recorded" 2 (S.recorded_accesses t);
  Alcotest.(check int) "skip still counted" 6 (S.total_accesses t);
  Alcotest.(check int) "skip leaves counters alone" 1
    (Cache.misses (Hierarchy.l1 h));
  (* [6,8) warm-up: tag/LRU state moves, counters do not *)
  acc t b;
  acc t b;
  Alcotest.(check int) "warm not recorded" 2 (S.recorded_accesses t);
  Alcotest.(check int) "warm bumps no miss counter" 1
    (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "warm bumps no hit counter" 1
    (Cache.hits (Hierarchy.l1 h));
  (* next period opens detailed: b is resident thanks to the warm-up *)
  acc t b;
  Alcotest.(check int) "warmed line hits in the next window" 2
    (Cache.hits (Hierarchy.l1 h));
  Alcotest.(check int) "9 total" 9 (S.total_accesses t);
  Alcotest.(check int) "3 recorded" 3 (S.recorded_accesses t);
  (* estimators scale window counters by total/recorded = 3 *)
  Alcotest.(check int) "est scales misses" 3 (S.est_l1_misses t)

(* a short sampler (stride=window) degenerates to no skip and no warm
   segment: every access detailed, scale stays 1 *)
let short_run_all_detailed () =
  let t = S.create ~window:4 ~stride:4 Hierarchy.small in
  for i = 0 to 9 do
    acc t (4096 + (64 * i))
  done;
  Alcotest.(check int) "all recorded" 10 (S.recorded_accesses t);
  Alcotest.(check int) "all counted" 10 (S.total_accesses t);
  Alcotest.(check bool) "scale is 1" true (S.scale t = 1.0)

(* an access occupies ONE position regardless of how many cache lines it
   straddles: a straddle inside the window records every covered line, a
   straddle in the warm segment warms every covered line *)
let straddle_positions () =
  (* window=1 stride=4 skip=2 → detailed [0,1), skip [1,3), warm [3,4) *)
  let t = S.create ~window:1 ~stride:4 ~skip:2 Hierarchy.small in
  let h = S.hierarchy t in
  (* pos 0 detailed: 8 bytes across a 64 B boundary, two cold L1 lines *)
  acc ~size:8 t (4096 + 60);
  Alcotest.(check int) "straddle records both lines" 2
    (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "one access, one position" 1 (S.recorded_accesses t);
  (* pos 1,2 skip *)
  acc t 0;
  acc t 0;
  (* pos 3 warm: straddle over two fresh lines — resident, unrecorded *)
  acc ~size:8 t (8192 + 60);
  Alcotest.(check int) "warm straddle records nothing" 2
    (Cache.misses (Hierarchy.l1 h) + Cache.hits (Hierarchy.l1 h));
  (* pos 0 of the next period: both warmed lines hit *)
  acc ~size:8 t (8192 + 60);
  Alcotest.(check int) "both warmed lines hit" 2 (Cache.hits (Hierarchy.l1 h))

let create_validates () =
  let bad f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "window 0 rejected" true (bad (fun () ->
      S.create ~window:0 ~stride:8 Hierarchy.small));
  Alcotest.(check bool) "stride < window rejected" true (bad (fun () ->
      S.create ~window:8 ~stride:4 Hierarchy.small));
  Alcotest.(check bool) "negative skip rejected" true (bad (fun () ->
      S.create ~window:2 ~stride:8 ~skip:(-1) Hierarchy.small));
  Alcotest.(check bool) "window + skip > stride rejected" true (bad (fun () ->
      S.create ~window:2 ~stride:8 ~skip:7 Hierarchy.small))

(* ---------------- try_advance ---------------- *)

let try_advance_segments () =
  (* window=2 stride=8 skip=4 → skip is [2,6) *)
  let t = S.create ~window:2 ~stride:8 ~skip:4 Hierarchy.small in
  (* the default skip = 0 (full functional warming) never fast-forwards *)
  let t0 = S.create ~window:2 ~stride:8 Hierarchy.small in
  acc t0 0;
  acc t0 0;
  Alcotest.(check bool) "skip = 0 never advances" false (S.try_advance t0 1);
  Alcotest.(check bool) "refused inside window" false (S.try_advance t 1);
  acc t 0;
  acc t 0;
  (* pos = 2, start of the skip segment (4 positions long) *)
  Alcotest.(check bool) "n = 0 refused" false (S.try_advance t 0);
  Alcotest.(check bool) "n < 0 refused" false (S.try_advance t (-1));
  Alcotest.(check bool) "span past skip_end refused" false (S.try_advance t 5);
  Alcotest.(check bool) "whole skip segment consumed" true (S.try_advance t 4);
  Alcotest.(check int) "total advanced by 4" 6 (S.total_accesses t);
  (* pos = 6: warm segment — bulk is never allowed to skip warming *)
  Alcotest.(check bool) "refused in warm segment" false (S.try_advance t 1);
  acc t 0;
  acc t 0;
  (* wrapped to pos 0 *)
  Alcotest.(check bool) "refused in next window" false (S.try_advance t 1);
  Alcotest.(check int) "refusals consumed nothing" 8 (S.total_accesses t)

(* try_advance n must be indistinguishable from n access calls: drive
   two samplers through the same 200-access schedule, one taking the
   bulk fast path whenever it is available *)
let try_advance_equivalence () =
  let mk () = S.create ~window:4 ~stride:16 ~skip:8 Hierarchy.small in
  let t_bulk = mk () and t_slow = mk () in
  let addr i = 4096 + (64 * (i * 7919 mod 24)) in
  let feed t ~bulk =
    let i = ref 0 in
    while !i < 200 do
      if bulk && 200 - !i >= 5 && S.try_advance t 5 then i := !i + 5
      else begin
        acc ~write:(!i mod 3 = 0) ~is_float:(!i mod 5 = 0) t (addr !i);
        incr i
      end
    done
  in
  feed t_bulk ~bulk:true;
  feed t_slow ~bulk:false;
  let hb = S.hierarchy t_bulk and hs = S.hierarchy t_slow in
  Alcotest.(check int) "total" (S.total_accesses t_slow)
    (S.total_accesses t_bulk);
  Alcotest.(check int) "recorded" (S.recorded_accesses t_slow)
    (S.recorded_accesses t_bulk);
  Alcotest.(check int) "L1 hits" (Cache.hits (Hierarchy.l1 hs))
    (Cache.hits (Hierarchy.l1 hb));
  Alcotest.(check int) "L1 misses" (Cache.misses (Hierarchy.l1 hs))
    (Cache.misses (Hierarchy.l1 hb));
  Alcotest.(check int) "L2 misses" (Cache.misses (Hierarchy.l2 hs))
    (Cache.misses (Hierarchy.l2 hb));
  Alcotest.(check int) "est L1" (S.est_l1_misses t_slow)
    (S.est_l1_misses t_bulk);
  Alcotest.(check int) "est cycles" (S.est_extra_cycles t_slow)
    (S.est_extra_cycles t_bulk)

(* ---------------- ring drain ≡ per-access ---------------- *)

module Ring = Slo_cachesim.Ring

let cache_state_eq (a : Cache.t) (b : Cache.t) =
  a.Cache.tags = b.Cache.tags
  && a.Cache.stamps = b.Cache.stamps
  && a.Cache.tick = b.Cache.tick
  && a.Cache.hits = b.Cache.hits
  && a.Cache.misses = b.Cache.misses
  && a.Cache.ins = b.Cache.ins
  && a.Cache.carry = b.Cache.carry
  && a.Cache.synth_tag = b.Cache.synth_tag

let sampler_state_eq a b =
  let ha = S.hierarchy a and hb = S.hierarchy b in
  cache_state_eq (Hierarchy.l1 ha) (Hierarchy.l1 hb)
  && cache_state_eq (Hierarchy.l2 ha) (Hierarchy.l2 hb)
  && Hierarchy.accesses ha = Hierarchy.accesses hb
  && Hierarchy.level_counts ha = Hierarchy.level_counts hb
  && Hierarchy.extra_cycles ha = Hierarchy.extra_cycles hb
  && S.total_accesses a = S.total_accesses b
  && S.recorded_accesses a = S.recorded_accesses b
  && S.est_l1_misses a = S.est_l1_misses b
  && S.est_l2_misses a = S.est_l2_misses b
  && S.est_extra_cycles a = S.est_extra_cycles b

(* [Sampled.drain] slices ring batches into period segments; counters,
   cache state and the skip correction points must be byte-equal to
   feeding every event through [Sampled.access] — across random period
   layouts (skip = 0 and > 0, degenerate warmless tails), random event
   streams and random batch boundaries. *)
let gen_sampled_case =
  QCheck.Gen.(
    int_range 1 6 >>= fun window ->
    int_range 0 8 >>= fun skip ->
    int_range 0 6 >>= fun warm ->
    let stride = window + skip + warm in
    list_size (int_range 1 300)
      (int_range 0 1023 >>= fun addr ->
       int_range 1 8 >>= fun size ->
       bool >>= fun write ->
       bool >>= fun is_float ->
       return (addr, size, write, is_float))
    >>= fun events ->
    int_range 1 13 >>= fun chunk ->
    return (window, stride, skip, events, chunk))

let print_sampled_case (window, stride, skip, events, chunk) =
  Printf.sprintf "W=%d S=%d K=%d chunk=%d events=%s" window stride skip chunk
    (String.concat ";"
       (List.map
          (fun (a, s, w, f) -> Printf.sprintf "(%d,%d,%b,%b)" a s w f)
          events))

let prop_drain_matches_per_access =
  QCheck.Test.make ~count:200
    ~name:"sampled drain byte-equal to per-access (incl. skip correction)"
    (QCheck.make gen_sampled_case ~print:print_sampled_case)
    (fun (window, stride, skip, events, chunk0) ->
      let per = S.create ~window ~stride ~skip Hierarchy.small in
      let dra = S.create ~window ~stride ~skip Hierarchy.small in
      List.iter
        (fun (addr, size, write, is_float) ->
          S.access per ~addr ~size ~write ~is_float)
        events;
      let n = List.length events in
      let addrs = Array.make n 0 and metas = Array.make n 0 in
      List.iteri
        (fun i (addr, size, write, is_float) ->
          addrs.(i) <- addr;
          metas.(i) <- Ring.meta ~size ~write ~is_float ~iid:i)
        events;
      let lo = ref 0 and k = ref 0 in
      while !lo < n do
        let c = min (n - !lo) (1 + ((chunk0 + !k) mod 13)) in
        S.drain dra addrs metas !lo (!lo + c);
        lo := !lo + c;
        incr k
      done;
      sampler_state_eq per dra)

(* The driver's bulk wiring: [bulk_ready] (predicting at pos + pending
   buffered events), then flush, then [try_advance] — never pushing the
   advanced accesses — must be indistinguishable from pushing every
   access. Skipped accesses are address-blind, so the per-access
   reference sees the identical stream. *)
let drain_bulk_equivalence () =
  let mk () = S.create ~window:3 ~stride:16 ~skip:9 Hierarchy.small in
  let t_ref = mk () and t_bulk = mk () in
  let ring = Ring.create ~cap:7 () in
  Ring.set_sink ring (fun r ->
      S.drain t_bulk r.Ring.addrs r.Ring.metas 0 r.Ring.len);
  let n = 500 in
  let ev i =
    ( 64 * (i * 7919 mod 24),
      (if i mod 4 = 0 then 8 else 4),
      i mod 3 = 0,
      i mod 5 = 0 )
  in
  for i = 0 to n - 1 do
    let addr, size, write, is_float = ev i in
    S.access t_ref ~addr ~size ~write ~is_float
  done;
  let i = ref 0 and advanced = ref 0 in
  while !i < n do
    let g = min (1 + (!i mod 5)) (n - !i) in
    if S.bulk_ready t_bulk ~pending:(Ring.length ring) g then begin
      Ring.flush ring;
      Alcotest.(check bool) "predicted advance accepted" true
        (S.try_advance t_bulk g);
      advanced := !advanced + g
    end
    else
      for j = !i to !i + g - 1 do
        let addr, size, write, is_float = ev j in
        Ring.push ring addr (Ring.meta ~size ~write ~is_float ~iid:j)
      done;
    i := !i + g
  done;
  Ring.flush ring;
  Alcotest.(check bool) "some groups actually bulk-advanced" true
    (!advanced > 0);
  Alcotest.(check bool) "bulk + drain ≡ per-access" true
    (sampler_state_eq t_ref t_bulk)

(* ---------------- stride = window ≡ exact ---------------- *)

let stride_eq_window_is_exact () =
  let t = S.create ~window:64 ~stride:64 Hierarchy.small in
  let h = S.hierarchy t in
  let exact = Hierarchy.create Hierarchy.small in
  for i = 0 to 999 do
    let a = i * 7919 mod 16384
    and write = i mod 3 = 0
    and is_float = i mod 5 = 0 in
    S.access t ~addr:a ~size:8 ~write ~is_float;
    Hierarchy.access_quiet exact ~addr:a ~size:8 ~write ~is_float
  done;
  Alcotest.(check int) "accesses" (Hierarchy.accesses exact)
    (Hierarchy.accesses h);
  Alcotest.(check int) "L1 hits" (Cache.hits (Hierarchy.l1 exact))
    (Cache.hits (Hierarchy.l1 h));
  Alcotest.(check int) "L1 misses" (Cache.misses (Hierarchy.l1 exact))
    (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "L2 hits" (Cache.hits (Hierarchy.l2 exact))
    (Cache.hits (Hierarchy.l2 h));
  Alcotest.(check int) "L2 misses" (Cache.misses (Hierarchy.l2 exact))
    (Cache.misses (Hierarchy.l2 h));
  Alcotest.(check int) "extra cycles" (Hierarchy.extra_cycles exact)
    (Hierarchy.extra_cycles h);
  Alcotest.(check bool) "scale 1" true (S.scale t = 1.0);
  Alcotest.(check int) "estimate = raw count"
    (Cache.misses (Hierarchy.l1 exact))
    (S.est_l1_misses t)

(* ---------------- the fidelity knob ---------------- *)

let fidelity_strings () =
  let ok s = match S.fidelity_of_string s with Ok f -> f | Error e -> Alcotest.fail e in
  let rejected s =
    match S.fidelity_of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "exact" true (ok "exact" = S.Exact);
  Alcotest.(check bool) "sampled defaults" true (ok "sampled" = S.sampled_default);
  Alcotest.(check bool) "sampled:W,S" true
    (ok "sampled:256,2048" = S.Sampled { window = 256; stride = 2048; skip = 0 });
  Alcotest.(check bool) "sampled:W,S,K" true
    (ok "sampled:256,2048,1024"
    = S.Sampled { window = 256; stride = 2048; skip = 1024 });
  (* name ∘ parse round-trips *)
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " round-trips") true (ok (S.fidelity_name (ok s)) = ok s))
    [ "exact"; "sampled"; "sampled:128,1024"; "sampled:128,1024,512" ];
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " rejected") true (rejected s))
    [ ""; "fast"; "sampled:"; "sampled:0,8"; "sampled:16,8"; "sampled:1,2,3";
      "sampled:4,16,-1"; "sampled:x,y" ]

(* each misconfiguration is rejected with its specific diagnosis *)
let fidelity_rejection_messages () =
  let err s =
    match S.fidelity_of_string s with
    | Error e -> e
    | Ok _ -> Alcotest.failf "%S unexpectedly accepted" s
  in
  let check_msg s fragment =
    let e = err s in
    Alcotest.(check bool)
      (Printf.sprintf "%S -> %S (got %S)" s fragment e)
      true
      (Astring.String.is_infix ~affix:fragment e)
  in
  check_msg "sampled:0,8" "window must be positive";
  check_msg "sampled:-4,8" "window must be positive";
  check_msg "sampled:4,0" "stride must be positive";
  check_msg "sampled:16,8" "window must not exceed stride";
  check_msg "sampled:4,16,-1" "skip must be >= 0";
  (* a skip that swallows the whole non-window remainder leaves nothing
     to warm from: K >= S - W is refused for K > 0... *)
  check_msg "sampled:4,16,12" "non-empty warm segment";
  check_msg "sampled:4,16,13" "non-empty warm segment";
  check_msg "sampled:4096,32768,28672" "non-empty warm segment";
  (* ...but K = 0 with W = S (pure exact) stays legal *)
  (match S.fidelity_of_string "sampled:16,16" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sampled:16,16 rejected: %s" e);
  (match S.fidelity_of_string "sampled:4,16,11" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sampled:4,16,11 rejected: %s" e);
  check_msg "sampled:x,y" "integer fields";
  check_msg "sampled:1,2,3,4" "integer fields";
  check_msg "bogus" "expected exact | sampled"

(* ---------------- roster accuracy gate ---------------- *)

(* The tier-1 face of the accuracy harness (bench/accuracy.exe runs the
   real sizes): per roster program, sampled fidelity must agree with
   exact simulation within |Δ| ≤ 0.5pp L1 / 1.0pp L2 miss rate, the
   measured speedup must agree in sign, and the transformation plans
   must be identical. Window/stride are scaled down with the tiny
   argument sizes so several periods still elapse. *)
let l1_bound_pp = 0.5
let l2_bound_pp = 1.0
let speedup_zero_pct = 0.1
let test_fidelity = S.Sampled { window = 256; stride = 2048; skip = 0 }

(* the explicit fast-forward mode (skip > 0): counters are biased (that
   is why it is not the default), but execution stays exact — the
   superblock bulk hook retires whole block chains during the skip
   segment and must not perturb steps, accesses or program output *)
let fast_forward_fidelity = S.Sampled { window = 64; stride = 1024; skip = 832 }

let tiny_args (e : Suite.entry) = List.map (fun a -> max 1 (a / 8)) e.train_args

let miss_rate_pct misses (m : D.measurement) =
  if m.D.m_accesses = 0 then 0.0
  else 100.0 *. float_of_int misses /. float_of_int m.D.m_accesses

let plan_summaries (ev : D.evaluation) =
  String.concat "; "
    (List.filter_map
       (fun (d : H.decision) -> Option.map H.plan_summary d.d_plan)
       ev.e_decisions)

let sign_of x =
  if x > speedup_zero_pct then 1 else if x < -.speedup_zero_pct then -1 else 0

(* same decision-flip rule as bench/accuracy.exe: only strictly
   opposite signs, or a dead-zone value against one clearing twice the
   band, count as a flip — values straddling the band edge by a hair
   agree for every decision the measurement feeds *)
let sign_flip a b =
  let sa = sign_of a and sb = sign_of b in
  if sa = sb then false
  else if sa * sb < 0 then true
  else Float.abs (if sa = 0 then b else a) > 2.0 *. speedup_zero_pct

let roster_accuracy (e : Suite.entry) () =
  let prog = D.compile e.source in
  let args = tiny_args e in
  let exact =
    D.evaluate ~args ~config:Hierarchy.small ~scheme:W.ISPBO ~feedback:None prog
  in
  (* the production configuration: superblock backend + sampled windows *)
  let sampled =
    D.evaluate ~args ~config:Hierarchy.small
      ~backend:Slo_vm.Backend.Superblock ~fidelity:test_fidelity
      ~scheme:W.ISPBO ~feedback:None prog
  in
  let check_side label (x : D.measurement) (s : D.measurement) =
    (* execution is exact in every fidelity *)
    Alcotest.(check string) (label ^ " output") x.m_result.output
      s.m_result.output;
    Alcotest.(check int) (label ^ " exit") x.m_result.exit_code
      s.m_result.exit_code;
    Alcotest.(check int) (label ^ " steps") x.m_result.steps s.m_result.steps;
    Alcotest.(check int) (label ^ " accesses") x.m_accesses s.m_accesses;
    (* counters are estimates, bounded in miss-rate terms *)
    let d1 =
      Float.abs (miss_rate_pct x.m_l1_misses x -. miss_rate_pct s.m_l1_misses s)
    and d2 =
      Float.abs (miss_rate_pct x.m_l2_misses x -. miss_rate_pct s.m_l2_misses s)
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s L1 miss-rate |d| %.3fpp <= %.1fpp" label d1 l1_bound_pp)
      true (d1 <= l1_bound_pp);
    Alcotest.(check bool)
      (Printf.sprintf "%s L2 miss-rate |d| %.3fpp <= %.1fpp" label d2 l2_bound_pp)
      true (d2 <= l2_bound_pp)
  in
  check_side "before" exact.e_before sampled.e_before;
  check_side "after" exact.e_after sampled.e_after;
  (* sampling never changes the analysis or the chosen plans *)
  Alcotest.(check string) "plans agree" (plan_summaries exact)
    (plan_summaries sampled);
  (* and must not flip the sign of the measured effect *)
  Alcotest.(check bool)
    (Printf.sprintf "speedup sign agrees (%+.2f%% vs %+.2f%%)"
       exact.e_speedup_pct sampled.e_speedup_pct)
    true
    (not (sign_flip exact.e_speedup_pct sampled.e_speedup_pct))

let roster_fast_forward (e : Suite.entry) () =
  let prog = D.compile e.source in
  let args = tiny_args e in
  let exact =
    D.evaluate ~args ~config:Hierarchy.small ~scheme:W.ISPBO ~feedback:None prog
  in
  let ff =
    D.evaluate ~args ~config:Hierarchy.small
      ~backend:Slo_vm.Backend.Superblock ~fidelity:fast_forward_fidelity
      ~scheme:W.ISPBO ~feedback:None prog
  in
  let check_side label (x : D.measurement) (s : D.measurement) =
    Alcotest.(check string) (label ^ " output") x.m_result.output
      s.m_result.output;
    Alcotest.(check int) (label ^ " exit") x.m_result.exit_code
      s.m_result.exit_code;
    Alcotest.(check int) (label ^ " steps") x.m_result.steps s.m_result.steps;
    Alcotest.(check int) (label ^ " accesses") x.m_accesses s.m_accesses
  in
  check_side "before" exact.e_before ff.e_before;
  check_side "after" exact.e_after ff.e_after;
  Alcotest.(check string) "plans agree" (plan_summaries exact)
    (plan_summaries ff)

(* the pipelined exact drain (worker-domain Drainer) must produce the
   same measurement as the serial sink, bit for bit — same cycles,
   same miss counters, same access totals *)
let roster_pipelined_measure (e : Suite.entry) () =
  let prog = D.compile e.source in
  let args = tiny_args e in
  let m ~pipeline =
    D.measure ~args ~config:Hierarchy.small
      ~backend:Slo_vm.Backend.Superblock ~pipeline prog
  in
  let s = m ~pipeline:false and p = m ~pipeline:true in
  Alcotest.(check string) "output" s.D.m_result.output p.D.m_result.output;
  Alcotest.(check int) "exit" s.D.m_result.exit_code p.D.m_result.exit_code;
  Alcotest.(check int) "steps" s.D.m_result.steps p.D.m_result.steps;
  Alcotest.(check int) "cycles" s.D.m_cycles p.D.m_cycles;
  Alcotest.(check int) "L1 misses" s.D.m_l1_misses p.D.m_l1_misses;
  Alcotest.(check int) "L2 misses" s.D.m_l2_misses p.D.m_l2_misses;
  Alcotest.(check int) "accesses" s.D.m_accesses p.D.m_accesses

let () =
  let per_entry mk =
    List.map
      (fun (e : Suite.entry) -> Alcotest.test_case e.name `Quick (mk e))
      (Suite.roster @ Suite.case_studies)
  in
  Alcotest.run "sampled"
    [
      ( "periods",
        [
          Alcotest.test_case "layout" `Quick period_layout;
          Alcotest.test_case "short run all detailed" `Quick
            short_run_all_detailed;
          Alcotest.test_case "straddle positions" `Quick straddle_positions;
          Alcotest.test_case "create validates" `Quick create_validates;
        ] );
      ( "try_advance",
        [
          Alcotest.test_case "segments" `Quick try_advance_segments;
          Alcotest.test_case "equivalence" `Quick try_advance_equivalence;
        ] );
      ( "ring drain",
        [
          QCheck_alcotest.to_alcotest prop_drain_matches_per_access;
          Alcotest.test_case "bulk hook wiring" `Quick drain_bulk_equivalence;
        ] );
      ( "exactness",
        [
          Alcotest.test_case "stride = window is exact" `Quick
            stride_eq_window_is_exact;
          Alcotest.test_case "fidelity strings" `Quick fidelity_strings;
          Alcotest.test_case "fidelity rejection messages" `Quick
            fidelity_rejection_messages;
        ] );
      ("roster accuracy", per_entry roster_accuracy);
      ("roster fast-forward", per_entry roster_fast_forward);
      ("roster pipelined measure", per_entry roster_pipelined_measure);
    ]
