(* Sampled cache simulation: exact-count unit tests for the period
   layout (detailed window / skip / warm-up), the O(1) bulk fast-forward,
   the stride = window ≡ exact property, and the roster accuracy gate
   that pins sampled estimates to exact simulation within fixed bounds. *)

module S = Slo_cachesim.Sampled
module Hierarchy = Slo_cachesim.Hierarchy
module Cache = Slo_cachesim.Cache
module D = Slo_core.Driver
module H = Slo_core.Heuristics
module W = Slo_profile.Weights
module Suite = Slo_suite.Suite

let acc ?(size = 4) ?(write = false) ?(is_float = false) t addr =
  S.access t ~addr ~size ~write ~is_float

(* ---------------- period layout, hand-computed counts ---------------- *)

(* window=2 stride=8 skip=4 → detailed [0,2), skip [2,6), warm [6,8) *)
let period_layout () =
  let t = S.create ~window:2 ~stride:8 ~skip:4 Hierarchy.small in
  let h = S.hierarchy t in
  let a = 4096 and b = 8192 in
  (* [0,2) detailed: cold miss on a, then a hit on the same line *)
  acc t a;
  acc t a;
  Alcotest.(check int) "window recorded" 2 (S.recorded_accesses t);
  Alcotest.(check int) "1 L1 miss" 1 (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "1 L1 hit" 1 (Cache.hits (Hierarchy.l1 h));
  (* [2,6) skip: counted, but neither counters nor cache state move *)
  for _ = 1 to 4 do
    acc t b
  done;
  Alcotest.(check int) "skip not recorded" 2 (S.recorded_accesses t);
  Alcotest.(check int) "skip still counted" 6 (S.total_accesses t);
  Alcotest.(check int) "skip leaves counters alone" 1
    (Cache.misses (Hierarchy.l1 h));
  (* [6,8) warm-up: tag/LRU state moves, counters do not *)
  acc t b;
  acc t b;
  Alcotest.(check int) "warm not recorded" 2 (S.recorded_accesses t);
  Alcotest.(check int) "warm bumps no miss counter" 1
    (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "warm bumps no hit counter" 1
    (Cache.hits (Hierarchy.l1 h));
  (* next period opens detailed: b is resident thanks to the warm-up *)
  acc t b;
  Alcotest.(check int) "warmed line hits in the next window" 2
    (Cache.hits (Hierarchy.l1 h));
  Alcotest.(check int) "9 total" 9 (S.total_accesses t);
  Alcotest.(check int) "3 recorded" 3 (S.recorded_accesses t);
  (* estimators scale window counters by total/recorded = 3 *)
  Alcotest.(check int) "est scales misses" 3 (S.est_l1_misses t)

(* a short sampler (stride=window) degenerates to no skip and no warm
   segment: every access detailed, scale stays 1 *)
let short_run_all_detailed () =
  let t = S.create ~window:4 ~stride:4 Hierarchy.small in
  for i = 0 to 9 do
    acc t (4096 + (64 * i))
  done;
  Alcotest.(check int) "all recorded" 10 (S.recorded_accesses t);
  Alcotest.(check int) "all counted" 10 (S.total_accesses t);
  Alcotest.(check bool) "scale is 1" true (S.scale t = 1.0)

(* an access occupies ONE position regardless of how many cache lines it
   straddles: a straddle inside the window records every covered line, a
   straddle in the warm segment warms every covered line *)
let straddle_positions () =
  (* window=1 stride=4 skip=2 → detailed [0,1), skip [1,3), warm [3,4) *)
  let t = S.create ~window:1 ~stride:4 ~skip:2 Hierarchy.small in
  let h = S.hierarchy t in
  (* pos 0 detailed: 8 bytes across a 64 B boundary, two cold L1 lines *)
  acc ~size:8 t (4096 + 60);
  Alcotest.(check int) "straddle records both lines" 2
    (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "one access, one position" 1 (S.recorded_accesses t);
  (* pos 1,2 skip *)
  acc t 0;
  acc t 0;
  (* pos 3 warm: straddle over two fresh lines — resident, unrecorded *)
  acc ~size:8 t (8192 + 60);
  Alcotest.(check int) "warm straddle records nothing" 2
    (Cache.misses (Hierarchy.l1 h) + Cache.hits (Hierarchy.l1 h));
  (* pos 0 of the next period: both warmed lines hit *)
  acc ~size:8 t (8192 + 60);
  Alcotest.(check int) "both warmed lines hit" 2 (Cache.hits (Hierarchy.l1 h))

let create_validates () =
  let bad f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "window 0 rejected" true (bad (fun () ->
      S.create ~window:0 ~stride:8 Hierarchy.small));
  Alcotest.(check bool) "stride < window rejected" true (bad (fun () ->
      S.create ~window:8 ~stride:4 Hierarchy.small));
  Alcotest.(check bool) "negative skip rejected" true (bad (fun () ->
      S.create ~window:2 ~stride:8 ~skip:(-1) Hierarchy.small));
  Alcotest.(check bool) "window + skip > stride rejected" true (bad (fun () ->
      S.create ~window:2 ~stride:8 ~skip:7 Hierarchy.small))

(* ---------------- try_advance ---------------- *)

let try_advance_segments () =
  (* window=2 stride=8 skip=4 → skip is [2,6) *)
  let t = S.create ~window:2 ~stride:8 ~skip:4 Hierarchy.small in
  (* the default skip = 0 (full functional warming) never fast-forwards *)
  let t0 = S.create ~window:2 ~stride:8 Hierarchy.small in
  acc t0 0;
  acc t0 0;
  Alcotest.(check bool) "skip = 0 never advances" false (S.try_advance t0 1);
  Alcotest.(check bool) "refused inside window" false (S.try_advance t 1);
  acc t 0;
  acc t 0;
  (* pos = 2, start of the skip segment (4 positions long) *)
  Alcotest.(check bool) "n = 0 refused" false (S.try_advance t 0);
  Alcotest.(check bool) "n < 0 refused" false (S.try_advance t (-1));
  Alcotest.(check bool) "span past skip_end refused" false (S.try_advance t 5);
  Alcotest.(check bool) "whole skip segment consumed" true (S.try_advance t 4);
  Alcotest.(check int) "total advanced by 4" 6 (S.total_accesses t);
  (* pos = 6: warm segment — bulk is never allowed to skip warming *)
  Alcotest.(check bool) "refused in warm segment" false (S.try_advance t 1);
  acc t 0;
  acc t 0;
  (* wrapped to pos 0 *)
  Alcotest.(check bool) "refused in next window" false (S.try_advance t 1);
  Alcotest.(check int) "refusals consumed nothing" 8 (S.total_accesses t)

(* try_advance n must be indistinguishable from n access calls: drive
   two samplers through the same 200-access schedule, one taking the
   bulk fast path whenever it is available *)
let try_advance_equivalence () =
  let mk () = S.create ~window:4 ~stride:16 ~skip:8 Hierarchy.small in
  let t_bulk = mk () and t_slow = mk () in
  let addr i = 4096 + (64 * (i * 7919 mod 24)) in
  let feed t ~bulk =
    let i = ref 0 in
    while !i < 200 do
      if bulk && 200 - !i >= 5 && S.try_advance t 5 then i := !i + 5
      else begin
        acc ~write:(!i mod 3 = 0) ~is_float:(!i mod 5 = 0) t (addr !i);
        incr i
      end
    done
  in
  feed t_bulk ~bulk:true;
  feed t_slow ~bulk:false;
  let hb = S.hierarchy t_bulk and hs = S.hierarchy t_slow in
  Alcotest.(check int) "total" (S.total_accesses t_slow)
    (S.total_accesses t_bulk);
  Alcotest.(check int) "recorded" (S.recorded_accesses t_slow)
    (S.recorded_accesses t_bulk);
  Alcotest.(check int) "L1 hits" (Cache.hits (Hierarchy.l1 hs))
    (Cache.hits (Hierarchy.l1 hb));
  Alcotest.(check int) "L1 misses" (Cache.misses (Hierarchy.l1 hs))
    (Cache.misses (Hierarchy.l1 hb));
  Alcotest.(check int) "L2 misses" (Cache.misses (Hierarchy.l2 hs))
    (Cache.misses (Hierarchy.l2 hb));
  Alcotest.(check int) "est L1" (S.est_l1_misses t_slow)
    (S.est_l1_misses t_bulk);
  Alcotest.(check int) "est cycles" (S.est_extra_cycles t_slow)
    (S.est_extra_cycles t_bulk)

(* ---------------- stride = window ≡ exact ---------------- *)

let stride_eq_window_is_exact () =
  let t = S.create ~window:64 ~stride:64 Hierarchy.small in
  let h = S.hierarchy t in
  let exact = Hierarchy.create Hierarchy.small in
  for i = 0 to 999 do
    let a = i * 7919 mod 16384
    and write = i mod 3 = 0
    and is_float = i mod 5 = 0 in
    S.access t ~addr:a ~size:8 ~write ~is_float;
    Hierarchy.access_quiet exact ~addr:a ~size:8 ~write ~is_float
  done;
  Alcotest.(check int) "accesses" (Hierarchy.accesses exact)
    (Hierarchy.accesses h);
  Alcotest.(check int) "L1 hits" (Cache.hits (Hierarchy.l1 exact))
    (Cache.hits (Hierarchy.l1 h));
  Alcotest.(check int) "L1 misses" (Cache.misses (Hierarchy.l1 exact))
    (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "L2 hits" (Cache.hits (Hierarchy.l2 exact))
    (Cache.hits (Hierarchy.l2 h));
  Alcotest.(check int) "L2 misses" (Cache.misses (Hierarchy.l2 exact))
    (Cache.misses (Hierarchy.l2 h));
  Alcotest.(check int) "extra cycles" (Hierarchy.extra_cycles exact)
    (Hierarchy.extra_cycles h);
  Alcotest.(check bool) "scale 1" true (S.scale t = 1.0);
  Alcotest.(check int) "estimate = raw count"
    (Cache.misses (Hierarchy.l1 exact))
    (S.est_l1_misses t)

(* ---------------- the fidelity knob ---------------- *)

let fidelity_strings () =
  let ok s = match S.fidelity_of_string s with Ok f -> f | Error e -> Alcotest.fail e in
  let rejected s =
    match S.fidelity_of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "exact" true (ok "exact" = S.Exact);
  Alcotest.(check bool) "sampled defaults" true (ok "sampled" = S.sampled_default);
  Alcotest.(check bool) "sampled:W,S" true
    (ok "sampled:256,2048" = S.Sampled { window = 256; stride = 2048; skip = 0 });
  Alcotest.(check bool) "sampled:W,S,K" true
    (ok "sampled:256,2048,1024"
    = S.Sampled { window = 256; stride = 2048; skip = 1024 });
  (* name ∘ parse round-trips *)
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " round-trips") true (ok (S.fidelity_name (ok s)) = ok s))
    [ "exact"; "sampled"; "sampled:128,1024"; "sampled:128,1024,512" ];
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " rejected") true (rejected s))
    [ ""; "fast"; "sampled:"; "sampled:0,8"; "sampled:16,8"; "sampled:1,2,3";
      "sampled:4,16,-1"; "sampled:x,y" ]

(* ---------------- roster accuracy gate ---------------- *)

(* The tier-1 face of the accuracy harness (bench/accuracy.exe runs the
   real sizes): per roster program, sampled fidelity must agree with
   exact simulation within |Δ| ≤ 0.5pp L1 / 1.0pp L2 miss rate, the
   measured speedup must agree in sign, and the transformation plans
   must be identical. Window/stride are scaled down with the tiny
   argument sizes so several periods still elapse. *)
let l1_bound_pp = 0.5
let l2_bound_pp = 1.0
let speedup_zero_pct = 0.1
let test_fidelity = S.Sampled { window = 256; stride = 2048; skip = 0 }

(* the explicit fast-forward mode (skip > 0): counters are biased (that
   is why it is not the default), but execution stays exact — the
   superblock bulk hook retires whole block chains during the skip
   segment and must not perturb steps, accesses or program output *)
let fast_forward_fidelity = S.Sampled { window = 64; stride = 1024; skip = 832 }

let tiny_args (e : Suite.entry) = List.map (fun a -> max 1 (a / 8)) e.train_args

let miss_rate_pct misses (m : D.measurement) =
  if m.D.m_accesses = 0 then 0.0
  else 100.0 *. float_of_int misses /. float_of_int m.D.m_accesses

let plan_summaries (ev : D.evaluation) =
  String.concat "; "
    (List.filter_map
       (fun (d : H.decision) -> Option.map H.plan_summary d.d_plan)
       ev.e_decisions)

let sign_of x =
  if x > speedup_zero_pct then 1 else if x < -.speedup_zero_pct then -1 else 0

let roster_accuracy (e : Suite.entry) () =
  let prog = D.compile e.source in
  let args = tiny_args e in
  let exact =
    D.evaluate ~args ~config:Hierarchy.small ~scheme:W.ISPBO ~feedback:None prog
  in
  (* the production configuration: superblock backend + sampled windows *)
  let sampled =
    D.evaluate ~args ~config:Hierarchy.small
      ~backend:Slo_vm.Backend.Superblock ~fidelity:test_fidelity
      ~scheme:W.ISPBO ~feedback:None prog
  in
  let check_side label (x : D.measurement) (s : D.measurement) =
    (* execution is exact in every fidelity *)
    Alcotest.(check string) (label ^ " output") x.m_result.output
      s.m_result.output;
    Alcotest.(check int) (label ^ " exit") x.m_result.exit_code
      s.m_result.exit_code;
    Alcotest.(check int) (label ^ " steps") x.m_result.steps s.m_result.steps;
    Alcotest.(check int) (label ^ " accesses") x.m_accesses s.m_accesses;
    (* counters are estimates, bounded in miss-rate terms *)
    let d1 =
      Float.abs (miss_rate_pct x.m_l1_misses x -. miss_rate_pct s.m_l1_misses s)
    and d2 =
      Float.abs (miss_rate_pct x.m_l2_misses x -. miss_rate_pct s.m_l2_misses s)
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s L1 miss-rate |d| %.3fpp <= %.1fpp" label d1 l1_bound_pp)
      true (d1 <= l1_bound_pp);
    Alcotest.(check bool)
      (Printf.sprintf "%s L2 miss-rate |d| %.3fpp <= %.1fpp" label d2 l2_bound_pp)
      true (d2 <= l2_bound_pp)
  in
  check_side "before" exact.e_before sampled.e_before;
  check_side "after" exact.e_after sampled.e_after;
  (* sampling never changes the analysis or the chosen plans *)
  Alcotest.(check string) "plans agree" (plan_summaries exact)
    (plan_summaries sampled);
  (* and must not flip the sign of the measured effect *)
  Alcotest.(check bool)
    (Printf.sprintf "speedup sign agrees (%+.2f%% vs %+.2f%%)"
       exact.e_speedup_pct sampled.e_speedup_pct)
    true
    (sign_of exact.e_speedup_pct = sign_of sampled.e_speedup_pct)

let roster_fast_forward (e : Suite.entry) () =
  let prog = D.compile e.source in
  let args = tiny_args e in
  let exact =
    D.evaluate ~args ~config:Hierarchy.small ~scheme:W.ISPBO ~feedback:None prog
  in
  let ff =
    D.evaluate ~args ~config:Hierarchy.small
      ~backend:Slo_vm.Backend.Superblock ~fidelity:fast_forward_fidelity
      ~scheme:W.ISPBO ~feedback:None prog
  in
  let check_side label (x : D.measurement) (s : D.measurement) =
    Alcotest.(check string) (label ^ " output") x.m_result.output
      s.m_result.output;
    Alcotest.(check int) (label ^ " exit") x.m_result.exit_code
      s.m_result.exit_code;
    Alcotest.(check int) (label ^ " steps") x.m_result.steps s.m_result.steps;
    Alcotest.(check int) (label ^ " accesses") x.m_accesses s.m_accesses
  in
  check_side "before" exact.e_before ff.e_before;
  check_side "after" exact.e_after ff.e_after;
  Alcotest.(check string) "plans agree" (plan_summaries exact)
    (plan_summaries ff)

let () =
  let per_entry mk =
    List.map
      (fun (e : Suite.entry) -> Alcotest.test_case e.name `Quick (mk e))
      (Suite.roster @ Suite.case_studies)
  in
  Alcotest.run "sampled"
    [
      ( "periods",
        [
          Alcotest.test_case "layout" `Quick period_layout;
          Alcotest.test_case "short run all detailed" `Quick
            short_run_all_detailed;
          Alcotest.test_case "straddle positions" `Quick straddle_positions;
          Alcotest.test_case "create validates" `Quick create_validates;
        ] );
      ( "try_advance",
        [
          Alcotest.test_case "segments" `Quick try_advance_segments;
          Alcotest.test_case "equivalence" `Quick try_advance_equivalence;
        ] );
      ( "exactness",
        [
          Alcotest.test_case "stride = window is exact" `Quick
            stride_eq_window_is_exact;
          Alcotest.test_case "fidelity strings" `Quick fidelity_strings;
        ] );
      ("roster accuracy", per_entry roster_accuracy);
      ("roster fast-forward", per_entry roster_fast_forward);
    ]
