(* IR substrate: layout, lowering, CFG, dominators, Havlak loops, call
   graph, DCE, program copying. *)

module Loc = Slo_minic.Loc

let lower src = Lower.lower_source src

(* ------------------------- layout ------------------------- *)

let layout_of fields =
  let t = Structs.create () in
  Structs.define t "s" fields;
  (t, Layout.create t)

let fld ?bits name ty = { Structs.name; ty; bits }

let layout_scalars () =
  let _, l = layout_of [ fld "a" Irty.Char; fld "b" Irty.Int; fld "c" Irty.Char;
                         fld "d" Irty.Double ] in
  let off i = (Layout.field_layout l "s" i).byte_off in
  Alcotest.(check int) "a" 0 (off 0);
  Alcotest.(check int) "b aligned to 4" 4 (off 1);
  Alcotest.(check int) "c" 8 (off 2);
  Alcotest.(check int) "d aligned to 8" 16 (off 3);
  Alcotest.(check int) "size rounded" 24 (Layout.struct_size l "s");
  Alcotest.(check int) "align" 8 (Layout.struct_align l "s")

let layout_pointers_arrays () =
  let t = Structs.create () in
  Structs.define t "inner" [ fld "x" Irty.Int ];
  Structs.define t "s"
    [ fld "p" (Irty.Ptr (Irty.Struct "inner"));
      fld "arr" (Irty.Array (Irty.Int, 3)); fld "tail" Irty.Char ];
  let l = Layout.create t in
  Alcotest.(check int) "ptr size" 8 (Layout.sizeof l (Irty.Ptr Irty.Void));
  Alcotest.(check int) "arr off" 8 (Layout.field_layout l "s" 1).byte_off;
  Alcotest.(check int) "tail off" 20 (Layout.field_layout l "s" 2).byte_off;
  Alcotest.(check int) "size" 24 (Layout.struct_size l "s")

let layout_bitfields () =
  let _, l =
    layout_of
      [ fld ~bits:3 "a" Irty.Int; fld ~bits:5 "b" Irty.Int;
        fld ~bits:30 "c" Irty.Int; fld "d" Irty.Char ]
  in
  let fla = Layout.field_layout l "s" 0 in
  let flb = Layout.field_layout l "s" 1 in
  let flc = Layout.field_layout l "s" 2 in
  Alcotest.(check int) "a unit" 0 fla.byte_off;
  Alcotest.(check int) "a bit" 0 fla.bit_off;
  Alcotest.(check int) "b same unit" 0 flb.byte_off;
  Alcotest.(check int) "b bit" 3 flb.bit_off;
  (* 30 bits do not fit the remaining 24: new unit *)
  Alcotest.(check int) "c new unit" 4 flc.byte_off;
  Alcotest.(check int) "c bit" 0 flc.bit_off;
  Alcotest.(check int) "d after units" 8
    (Layout.field_layout l "s" 3).byte_off

let prop_layout_no_overlap =
  (* random scalar field lists: offsets never overlap, all within size *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 10)
        (oneofl [ Irty.Char; Irty.Short; Irty.Int; Irty.Long; Irty.Float;
                  Irty.Double ]))
  in
  QCheck.Test.make ~count:200 ~name:"layout fields never overlap"
    (QCheck.make gen)
    (fun tys ->
      let fields = List.mapi (fun i ty -> fld (Printf.sprintf "f%d" i) ty) tys in
      let _, l = layout_of fields in
      let size = Layout.struct_size l "s" in
      let ranges =
        List.mapi
          (fun i ty ->
            let o = (Layout.field_layout l "s" i).byte_off in
            let s = Layout.sizeof l ty in
            (o, o + s))
          tys
      in
      List.for_all (fun (_, e) -> e <= size) ranges
      && List.for_all
           (fun (i, (o1, e1)) ->
             List.for_all
               (fun (j, (o2, e2)) -> i = j || e1 <= o2 || e2 <= o1)
               (List.mapi (fun j r -> (j, r)) ranges))
           (List.mapi (fun i r -> (i, r)) ranges))

let prop_layout_alignment =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 10)
        (oneofl [ Irty.Char; Irty.Short; Irty.Int; Irty.Long; Irty.Double ]))
  in
  QCheck.Test.make ~count:200 ~name:"every field is naturally aligned"
    (QCheck.make gen)
    (fun tys ->
      let fields = List.mapi (fun i ty -> fld (Printf.sprintf "f%d" i) ty) tys in
      let _, l = layout_of fields in
      List.for_all
        (fun (i, ty) ->
          let o = (Layout.field_layout l "s" i).byte_off in
          o mod Layout.alignof l ty = 0)
        (List.mapi (fun i ty -> (i, ty)) tys))

(* ------------------------- lowering ------------------------- *)

let find_func prog name = Option.get (Ir.find_func prog name)

let lower_alloc_pattern () =
  let prog =
    lower
      "struct s { int v; };\n\
       struct s *p;\n\
       int main() { p = (struct s*)malloc(10 * sizeof(struct s)); return 0; }"
  in
  let main = find_func prog "main" in
  let found = ref false in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.idesc with
          | Ir.Ialloc (_, Ir.Amalloc, Ir.Oimm 10L, Irty.Struct "s") ->
            found := true
          | _ -> ())
        b.instrs)
    main.fblocks;
  Alcotest.(check bool) "typed alloc recognised" true !found;
  Alcotest.(check int) "no sizeof escapes" 0 (List.length prog.psizeof_uses)

let lower_sizeof_escape () =
  let prog =
    lower
      "struct s { int v; };\n\
       int main() { long b; b = 2 * sizeof(struct s); return (int)b; }"
  in
  Alcotest.(check int) "sizeof escape recorded" 1
    (List.length prog.psizeof_uses)

let lower_field_tags () =
  let prog =
    lower
      "struct s { int a; int b; };\n\
       struct s *p;\n\
       int main() { p = (struct s*)malloc(4 * sizeof(struct s));\n\
       p[1].b = 7; return p[1].b; }"
  in
  let main = find_func prog "main" in
  let tags = ref [] in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.idesc with
          | Ir.Iload (_, _, _, Some a) -> tags := ("load", a.afield) :: !tags
          | Ir.Istore (_, _, _, Some a) -> tags := ("store", a.afield) :: !tags
          | _ -> ())
        b.instrs)
    main.fblocks;
  Alcotest.(check bool) "store tagged with field 1" true
    (List.mem ("store", 1) !tags);
  Alcotest.(check bool) "load tagged with field 1" true
    (List.mem ("load", 1) !tags)

let lower_short_circuit () =
  (* && must not evaluate the second operand when the first is false *)
  let prog =
    lower
      "int hits;\n\
       int bump() { hits = hits + 1; return 1; }\n\
       int main() { int x; hits = 0; x = 0; if (x && bump()) { x = 2; }\n\
       return hits; }"
  in
  let res = Slo_vm.Interp.run_program prog in
  Alcotest.(check int) "no bump" 0 res.exit_code

let lower_unsupported () =
  match
    lower "struct s { int v; }; int main() { struct s a; struct s b; a = b; return 0; }"
  with
  | exception Lower.Unsupported _ -> ()
  | exception Slo_minic.Typecheck.Error _ -> ()
  | _ -> Alcotest.fail "expected whole-struct assignment to be rejected"

(* ------------------------- CFG / dominators ------------------------- *)

let diamond_prog =
  "int main(int a) { int x;\n\
   if (a > 0) { x = 1; } else { x = 2; }\n\
   return x; }"

let cfg_diamond () =
  let prog = lower diamond_prog in
  let cfg = Cfg.build (find_func prog "main") in
  let entry = Cfg.entry cfg in
  (match cfg.succs.(entry) with
  | [ a; b ] -> Alcotest.(check bool) "two succs" true (a <> b)
  | _ -> Alcotest.fail "diamond entry should branch");
  Alcotest.(check int) "rpo covers reachable" 4 (Array.length cfg.rpo)

let dom_diamond () =
  let prog = lower diamond_prog in
  let cfg = Cfg.build (find_func prog "main") in
  let dom = Dom.compute cfg in
  let entry = Cfg.entry cfg in
  let join =
    (* the unique block with two predecessors *)
    let j = ref (-1) in
    Array.iter
      (fun b -> if List.length cfg.preds.(b) = 2 then j := b)
      cfg.rpo;
    !j
  in
  Alcotest.(check bool) "join exists" true (join >= 0);
  Alcotest.(check (option int)) "idom(join) = entry" (Some entry)
    (Dom.idom dom join);
  Alcotest.(check bool) "entry dominates all" true
    (Array.for_all (fun b -> Dom.dominates dom entry b) cfg.rpo);
  Alcotest.(check bool) "branch arms do not dominate join" true
    (List.for_all
       (fun arm -> arm = entry || not (Dom.dominates dom arm join))
       cfg.preds.(join))

(* naive dominance oracle: b is dominated by a iff removing a disconnects
   b from entry *)
let naive_dominates (cfg : Cfg.t) a b =
  if a = b then true
  else begin
    let visited = Hashtbl.create 16 in
    let rec dfs x =
      if x <> a && not (Hashtbl.mem visited x) then begin
        Hashtbl.replace visited x ();
        List.iter dfs cfg.succs.(x)
      end
    in
    dfs (Cfg.entry cfg);
    not (Hashtbl.mem visited b)
  end

let nested_loop_prog =
  "int main(int n) { int i; int j; int s; s = 0;\n\
   for (i = 0; i < n; i++) {\n\
   for (j = 0; j < n; j++) { s = s + i * j;\n\
   if (s > 100) { s = s - 50; } }\n\
   while (s > 10) { s = s / 2; } }\n\
   return s; }"

let dom_matches_naive () =
  let prog = lower nested_loop_prog in
  let cfg = Cfg.build (find_func prog "main") in
  let dom = Dom.compute cfg in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "dom %d %d" a b)
            (naive_dominates cfg a b) (Dom.dominates dom a b))
        cfg.rpo)
    cfg.rpo

(* ------------------------- loops ------------------------- *)

let loops_nested () =
  let prog = lower nested_loop_prog in
  let cfg = Cfg.build (find_func prog "main") in
  let forest = Loop.compute cfg in
  let all = Loop.all_loops forest in
  Alcotest.(check int) "three loops" 3 (List.length all);
  let depths = List.map (fun (l : Loop.loop) -> l.depth) all in
  Alcotest.(check bool) "innermost first" true
    (List.sort (fun a b -> compare b a) depths = depths);
  Alcotest.(check int) "max depth 2" 2 (List.fold_left max 0 depths);
  (* exactly one top-level loop with two children *)
  (match Loop.top_level forest with
  | [ top ] ->
    Alcotest.(check int) "two inner loops" 2 (List.length top.children);
    Alcotest.(check bool) "no irreducible" true
      (List.for_all (fun (l : Loop.loop) -> not l.irreducible) all)
  | _ -> Alcotest.fail "expected a single outer loop");
  (* every back edge targets a recognised header *)
  List.iter
    (fun (l : Loop.loop) ->
      Alcotest.(check bool) "header has back edge" true
        (List.exists
           (fun p -> Loop.is_back_edge forest (p, l.header))
           cfg.preds.(l.header)))
    all

let loops_while_do () =
  let prog =
    lower
      "int main(int n) { int s; s = 0;\n\
       do { s = s + 1; } while (s < n);\n\
       while (s > 0) { s = s - 3; }\n\
       return s; }"
  in
  let cfg = Cfg.build (find_func prog "main") in
  let forest = Loop.compute cfg in
  Alcotest.(check int) "two loops" 2 (List.length (Loop.all_loops forest))

let loops_irreducible () =
  (* hand-built irreducible CFG: entry branches into the middle of a cycle *)
  let f =
    {
      Ir.fname = "irr"; fret = Irty.Int; fparams = []; flocals = [];
      fblocks = []; floc = Loc.dummy; next_reg = 1; next_block = 0;
    }
  in
  let mk term =
    let b = Ir.fresh_block f Loc.dummy in
    b.btermin <- term;
    b
  in
  let b0 = mk (Ir.Tjmp 0) and b1 = mk (Ir.Tjmp 0) and b2 = mk (Ir.Tjmp 0)
  and b3 = mk (Ir.Tret None) in
  b0.btermin <- Ir.Tbr (Ir.Oreg 0, b1.bid, b2.bid);
  b1.btermin <- Ir.Tjmp b2.bid;
  b2.btermin <- Ir.Tbr (Ir.Oreg 0, b1.bid, b3.bid);
  let cfg = Cfg.build f in
  let forest = Loop.compute cfg in
  Alcotest.(check bool) "detects irreducible region" true
    (List.exists (fun (l : Loop.loop) -> l.irreducible)
       (Loop.all_loops forest))

(* property: on random reducible CFGs built from structured code, every
   block inside a loop is dominated by its innermost loop header *)
let prop_loops_dominated =
  QCheck.Test.make ~count:60 ~name:"loop headers dominate their blocks"
    QCheck.(make Gen.(int_range 0 1000))
    (fun seed ->
      let body =
        (* vary the structure with the seed *)
        match seed mod 4 with
        | 0 -> "while (a > 0) { a = a - 1; if (a % 2 == 0) { b = b + 1; } }"
        | 1 -> "for (i = 0; i < a; i++) { while (b < i) { b = b + 2; } }"
        | 2 -> "do { a = a - 1; for (i = 0; i < 3; i++) { b = b + i; } } while (a > 0);"
        | _ -> "while (a > 0) { a = a - 1; } while (b > 0) { b = b - 1; }"
      in
      let src =
        Printf.sprintf
          "int main(int a) { int b; int i; b = %d;\n%s\nreturn b; }" seed body
      in
      let prog = lower src in
      let cfg = Cfg.build (Option.get (Ir.find_func prog "main")) in
      let dom = Dom.compute cfg in
      let forest = Loop.compute cfg in
      List.for_all
        (fun (l : Loop.loop) ->
          List.for_all
            (fun b -> Dom.dominates dom l.header b)
            (Loop.all_blocks l))
        (Loop.all_loops forest))

(* ------------------------- call graph ------------------------- *)

let callgraph_basics () =
  let prog =
    lower
      "int c() { return 1; }\n\
       int b() { return c(); }\n\
       int a() { return b() + c(); }\n\
       int main() { return a(); }"
  in
  let cg = Callgraph.build prog in
  Alcotest.(check int) "a has two sites" 2
    (List.length (Callgraph.call_sites cg "a"));
  Alcotest.(check int) "c has two callers" 2
    (List.length (Callgraph.callers_of cg "c"));
  let sccs = Callgraph.sccs_topological cg in
  let pos name =
    let rec go i = function
      | [] -> -1
      | scc :: rest -> if List.mem name scc then i else go (i + 1) rest
    in
    go 0 sccs
  in
  Alcotest.(check bool) "main before a" true (pos "main" < pos "a");
  Alcotest.(check bool) "a before b" true (pos "a" < pos "b");
  Alcotest.(check bool) "b before c" true (pos "b" < pos "c")

let callgraph_recursion () =
  let prog =
    lower
      "int odd(int n);\n\
       int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }\n\
       int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }\n\
       int main() { return even(10); }"
  in
  let cg = Callgraph.build prog in
  let sccs = Callgraph.sccs_topological cg in
  Alcotest.(check bool) "mutual recursion in one SCC" true
    (List.exists
       (fun scc -> List.mem "even" scc && List.mem "odd" scc)
       sccs)

(* ------------------------- DCE / copy ------------------------- *)

let dce_removes_orphans () =
  let prog =
    lower "int g; int main() { g = 1; return g; }"
  in
  let main = find_func prog "main" in
  (* add an orphan chain by hand *)
  let r1 = Ir.fresh_reg main and r2 = Ir.fresh_reg main in
  let entry = List.hd main.fblocks in
  entry.instrs <-
    entry.instrs
    @ [ { Ir.iid = 9001; iloc = Loc.dummy; idesc = Ir.Iaddrglob (r1, "g") };
        { Ir.iid = 9002; iloc = Loc.dummy;
          idesc = Ir.Iload (r2, Ir.Oreg r1, Irty.Int, None) } ];
  let removed = Dce.cleanup main in
  Alcotest.(check int) "both removed" 2 removed;
  let res = Slo_vm.Interp.run_program prog in
  Alcotest.(check int) "still correct" 1 res.exit_code

let copy_is_deep () =
  let prog = lower "int main() { return 5; }" in
  let copy = Ircopy.copy_program prog in
  let main = find_func copy "main" in
  (List.hd main.fblocks).btermin <- Ir.Tret (Some (Ir.Oimm 9L));
  Alcotest.(check int) "original unchanged" 5
    (Slo_vm.Interp.run_program prog).exit_code;
  Alcotest.(check int) "copy changed" 9
    (Slo_vm.Interp.run_program copy).exit_code

(* ------------------------- shape ------------------------- *)

(* a clean linked ring over one malloc: the poolable baseline the
   negative variants below each break in exactly one way *)
let ring_decls =
  "struct n { long v; struct n *next; };\n\
   struct n *items;\n\
   long acc;\n"

let ring_build =
  "  items = (struct n*)malloc(10 * sizeof(struct n));\n\
  \  for (i = 0; i < 10; i++) {\n\
  \    items[i].v = i;\n\
  \    items[i].next = items + ((i + 1) % 10);\n\
  \  }\n"

let ring_walk =
  "  p = items;\n\
  \  for (i = 0; i < 10; i++) { acc = acc + p->v; p = p->next; }\n\
  \  printf(\"%ld\\n\", acc);\n\
  \  return 0;\n"

let ring_src =
  ring_decls ^ "int main() {\n  long i; struct n *p;\n" ^ ring_build
  ^ ring_walk ^ "}\n"

let verdict_of src =
  match Shape.verdict (Shape.analyze (lower src)) "n" with
  | Some v -> v
  | None -> Alcotest.fail "struct n has no shape verdict"

let has_reason (v : Shape.verdict) r =
  List.exists (fun (w : Shape.witness) -> w.sw_reason = r) v.v_witnesses

let shape_ring_poolable () =
  let v = verdict_of ring_src in
  Alcotest.(check bool) "poolable" true v.v_poolable;
  Alcotest.(check (list int)) "link fields" [ 1 ] v.v_links;
  Alcotest.(check (list string)) "link names" [ "next" ] v.v_link_names;
  match v.v_alloc with
  | Some site -> Alcotest.(check string) "alloc in main" "main" site.sp_fn
  | None -> Alcotest.fail "no allocation site recorded"

let shape_second_site_refutes () =
  let src =
    ring_decls ^ "struct n *spare;\nint main() {\n  long i; struct n *p;\n"
    ^ ring_build
    ^ "  spare = (struct n*)malloc(4 * sizeof(struct n));\n"
    ^ "  spare[0].v = 1;\n" ^ ring_walk ^ "}\n"
  in
  let v = verdict_of src in
  Alcotest.(check bool) "refuted" false v.v_poolable;
  Alcotest.(check bool) "MULTI witnessed" true (has_reason v Shape.MULTI)

let shape_null_store_refutes () =
  let src =
    ring_decls ^ "int main() {\n  long i; struct n *p;\n" ^ ring_build
    ^ "  items[9].next = 0;\n"
    ^ "  p = items;\n\
      \  for (i = 0; i < 9; i++) { acc = acc + p->v; p = p->next; }\n\
      \  printf(\"%ld\\n\", acc);\n\
      \  return 0;\n}\n"
  in
  let v = verdict_of src in
  Alcotest.(check bool) "refuted" false v.v_poolable;
  Alcotest.(check bool) "NULLLINK witnessed" true
    (has_reason v Shape.NULLLINK)

let shape_interior_alias_refutes () =
  let src =
    ring_decls ^ "struct n **hook;\nint main() {\n  long i; struct n *p;\n"
    ^ ring_build ^ "  hook = &items[3].next;\n" ^ ring_walk ^ "}\n"
  in
  let v = verdict_of src in
  Alcotest.(check bool) "refuted" false v.v_poolable;
  Alcotest.(check bool) "INTERIOR witnessed" true
    (has_reason v Shape.INTERIOR)

let shape_free_refutes () =
  let src =
    ring_decls ^ "int main() {\n  long i; struct n *p;\n" ^ ring_build
    ^ "  acc = 0;\n"
    ^ "  p = items;\n\
      \  for (i = 0; i < 10; i++) { acc = acc + p->v; p = p->next; }\n\
      \  free(items);\n\
      \  printf(\"%ld\\n\", acc);\n\
      \  return 0;\n}\n"
  in
  let v = verdict_of src in
  Alcotest.(check bool) "refuted" false v.v_poolable;
  Alcotest.(check bool) "FREED witnessed" true (has_reason v Shape.FREED)

let shape_realloc_in_loop_refutes () =
  let src =
    ring_decls
    ^ "void grow() {\n\
      \  long i;\n\
      \  items = (struct n*)malloc(10 * sizeof(struct n));\n\
      \  for (i = 0; i < 10; i++) {\n\
      \    items[i].v = i;\n\
      \    items[i].next = items + ((i + 1) % 10);\n\
      \  }\n\
       }\n"
    ^ "int main() {\n  long i; long r; struct n *p;\n"
    ^ "  for (r = 0; r < 3; r++) { grow(); }\n"
    ^ ring_walk ^ "}\n"
  in
  let v = verdict_of src in
  Alcotest.(check bool) "refuted" false v.v_poolable;
  Alcotest.(check bool) "REDOALLOC witnessed" true
    (has_reason v Shape.REDOALLOC)

let shape_null_test_refutes () =
  let src =
    ring_decls ^ "int main() {\n  long i; struct n *p;\n" ^ ring_build
    ^ "  p = items;\n\
      \  while (p != 0) { acc = acc + p->v; p = 0; }\n\
      \  printf(\"%ld\\n\", acc);\n\
      \  return 0;\n}\n"
  in
  let v = verdict_of src in
  Alcotest.(check bool) "refuted" false v.v_poolable;
  Alcotest.(check bool) "NULLLINK witnessed" true
    (has_reason v Shape.NULLLINK)

(* the pool rewrite end-to-end on the ring: struct gone, factored pool
   structs and anchors in place, behaviour bit-identical *)
let pool_rewrite_ring () =
  let module T = Slo_core.Transform in
  let prog = lower ring_src in
  let rep =
    Slo_suite.Oracle.run prog
      [ Slo_core.Heuristics.Pool { T.po_typ = "n"; po_links = [ 1 ] } ]
  in
  if not (Slo_suite.Oracle.ok rep) then
    Alcotest.fail (Slo_suite.Oracle.describe rep);
  let pooled = Ircopy.copy_program prog in
  T.pool pooled { T.po_typ = "n"; po_links = [ 1 ] };
  Alcotest.(check bool) "struct n removed" true
    (Structs.find_opt pooled.Ir.structs "n" = None);
  Alcotest.(check bool) "data pool defined" true
    (Structs.find_opt pooled.Ir.structs "n__pool" <> None);
  Alcotest.(check bool) "link piece defined" true
    (Structs.find_opt pooled.Ir.structs "n__next" <> None);
  let has_global g =
    List.exists (fun (n, _, _) -> String.equal n g) pooled.Ir.globals
  in
  Alcotest.(check bool) "data anchor" true (has_global "__pool_n__pool");
  Alcotest.(check bool) "link anchor" true (has_global "__pool_n__next")

let pool_rejects_bad_specs () =
  let module T = Slo_core.Transform in
  let check_rejects name spec =
    let prog = lower ring_src in
    match T.pool prog spec with
    | () -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  check_rejects "unknown struct" { T.po_typ = "ghost"; po_links = [ 0 ] };
  check_rejects "empty links" { T.po_typ = "n"; po_links = [] };
  check_rejects "non-link field" { T.po_typ = "n"; po_links = [ 0 ] };
  check_rejects "out-of-range field" { T.po_typ = "n"; po_links = [ 7 ] }

let () =
  Alcotest.run "ir"
    [
      ( "layout",
        [
          Alcotest.test_case "scalars" `Quick layout_scalars;
          Alcotest.test_case "pointers/arrays" `Quick layout_pointers_arrays;
          Alcotest.test_case "bitfields" `Quick layout_bitfields;
          QCheck_alcotest.to_alcotest prop_layout_no_overlap;
          QCheck_alcotest.to_alcotest prop_layout_alignment;
        ] );
      ( "lower",
        [
          Alcotest.test_case "alloc pattern" `Quick lower_alloc_pattern;
          Alcotest.test_case "sizeof escape" `Quick lower_sizeof_escape;
          Alcotest.test_case "field tags" `Quick lower_field_tags;
          Alcotest.test_case "short circuit" `Quick lower_short_circuit;
          Alcotest.test_case "unsupported" `Quick lower_unsupported;
        ] );
      ( "cfg+dom",
        [
          Alcotest.test_case "diamond cfg" `Quick cfg_diamond;
          Alcotest.test_case "diamond dominators" `Quick dom_diamond;
          Alcotest.test_case "matches naive oracle" `Quick dom_matches_naive;
        ] );
      ( "loops",
        [
          Alcotest.test_case "nested" `Quick loops_nested;
          Alcotest.test_case "while/do" `Quick loops_while_do;
          Alcotest.test_case "irreducible" `Quick loops_irreducible;
          QCheck_alcotest.to_alcotest prop_loops_dominated;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "basics" `Quick callgraph_basics;
          Alcotest.test_case "recursion" `Quick callgraph_recursion;
        ] );
      ( "dce+copy",
        [
          Alcotest.test_case "dce" `Quick dce_removes_orphans;
          Alcotest.test_case "deep copy" `Quick copy_is_deep;
        ] );
      ( "shape",
        [
          Alcotest.test_case "clean ring poolable" `Quick
            shape_ring_poolable;
          Alcotest.test_case "second site refutes" `Quick
            shape_second_site_refutes;
          Alcotest.test_case "null store refutes" `Quick
            shape_null_store_refutes;
          Alcotest.test_case "interior alias refutes" `Quick
            shape_interior_alias_refutes;
          Alcotest.test_case "free refutes" `Quick shape_free_refutes;
          Alcotest.test_case "re-allocation refutes" `Quick
            shape_realloc_in_loop_refutes;
          Alcotest.test_case "null test refutes" `Quick
            shape_null_test_refutes;
          Alcotest.test_case "pool rewrite on the ring" `Quick
            pool_rewrite_ring;
          Alcotest.test_case "pool rejects bad specs" `Quick
            pool_rejects_bad_specs;
        ] );
    ]
