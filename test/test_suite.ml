(* Integration over the benchmark roster: every program compiles, runs, and
   survives its planned transformation with identical output. Scales are
   tiny so the whole suite stays fast; the bench harness runs the real
   sizes. *)

module D = Slo_core.Driver
module L = Slo_core.Legality
module H = Slo_core.Heuristics
module W = Slo_profile.Weights
module Suite = Slo_suite.Suite

let tiny_args (e : Suite.entry) = List.map (fun a -> max 1 (a / 8)) e.train_args

let compile_runs (e : Suite.entry) () =
  let prog = D.compile e.source in
  let res = Slo_vm.Interp.run_program ~args:(tiny_args e) prog in
  Alcotest.(check int) "exit 0" 0 res.exit_code;
  Alcotest.(check bool) "prints something" true (String.length res.output > 0)

let legality_shape (e : Suite.entry) () =
  let prog = D.compile e.source in
  let leg = L.analyze prog in
  let total = List.length (L.types leg) in
  let strict = L.legal_count leg in
  let relax = L.legal_count ~relax:true leg in
  Alcotest.(check bool) "has types" true (total > 0);
  Alcotest.(check bool) "strict <= relax" true (strict <= relax);
  match e.paper with
  | None -> ()
  | Some p ->
    (* our models reproduce the paper's shape: within 15 points of the
       published percentages *)
    let pct x = 100.0 *. float_of_int x /. float_of_int total in
    Alcotest.(check bool)
      (Printf.sprintf "legal%% near paper (%.1f vs %.1f)" (pct strict)
         p.p_legal_pct)
      true
      (Float.abs (pct strict -. p.p_legal_pct) <= 15.0);
    Alcotest.(check bool)
      (Printf.sprintf "relax%% near paper (%.1f vs %.1f)" (pct relax)
         p.p_relax_pct)
      true
      (Float.abs (pct relax -. p.p_relax_pct) <= 16.0)

let transform_preserves (e : Suite.entry) () =
  let prog = D.compile e.source in
  let args = tiny_args e in
  let leg, aff = D.analyze prog ~scheme:W.ISPBO ~feedback:None in
  let plans = H.plans (H.decide prog leg aff ~scheme:W.ISPBO) in
  let before = Slo_vm.Interp.run_program ~args prog in
  let transformed = D.transform_with_plans prog plans in
  let after = Slo_vm.Interp.run_program ~args transformed in
  Alcotest.(check string) "output preserved" before.output after.output

(* the closure-compiled backend is pinned to the tree-walking reference
   on every roster program: identical output, steps and cache counters
   under the same (small) hierarchy *)
let backends_agree (e : Suite.entry) () =
  let prog = D.compile e.source in
  match
    Slo_suite.Oracle.compare_backends ~args:(tiny_args e)
      ~config:Slo_cachesim.Hierarchy.small prog
  with
  | [] -> ()
  | ms ->
    Alcotest.fail
      (String.concat "\n"
         (List.map Slo_suite.Oracle.string_of_backend_mismatch ms))

let expected_transforms () =
  (* the paper's headline transformations happen *)
  let check_plan name expected =
    let e = Suite.find name in
    let prog = D.compile e.source in
    let fb, _ = Slo_profile.Collect.collect ~args:(tiny_args e) prog in
    let leg, aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some fb) in
    let ds = H.decide prog leg aff ~scheme:W.PBO in
    let summary =
      String.concat "; "
        (List.filter_map (fun (d : H.decision) ->
             Option.map H.plan_summary d.d_plan)
           ds)
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s plans %s (got: %s)" name expected summary)
      true
      (Astring.String.is_infix ~affix:expected summary)
  in
  check_plan "179.art" "peel f1_neuron";
  check_plan "spec2006.peel2" "peel pairrec"

let mcf_split_under_pbo () =
  let e = Suite.find "181.mcf" in
  let prog = D.compile e.source in
  let fb, _ = Slo_profile.Collect.collect ~args:e.train_args prog in
  let leg, aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some fb) in
  let ds = H.decide prog leg aff ~scheme:W.PBO in
  match
    List.find_map
      (fun (d : H.decision) ->
        match d.d_plan with
        | Some (H.Split s) when String.equal s.s_typ "node" -> Some s
        | _ -> None)
      ds
  with
  | None -> Alcotest.fail "mcf node should split under PBO"
  | Some sp ->
    let name i =
      (Structs.find prog.Ir.structs "node").fields.(i).Structs.name
    in
    let cold_names = List.map name sp.s_cold in
    let dead_names = List.map name sp.s_dead in
    Alcotest.(check bool) "ident dead" true (List.mem "ident" dead_names);
    List.iter
      (fun f ->
        Alcotest.(check bool) (f ^ " split out") true
          (List.mem f cold_names))
      [ "number"; "sibling_prev"; "firstout"; "firstin"; "flow" ];
    List.iter
      (fun f ->
        Alcotest.(check bool) (f ^ " stays hot") true
          (List.mem (Option.get (Structs.field_index prog.Ir.structs "node" f))
             sp.s_hot))
      [ "potential"; "pred" ]

let table1_averages () =
  (* the roster-wide averages land near the paper's 20.9% / 65.7% *)
  let totals = ref 0.0 and strict = ref 0.0 and relax = ref 0.0 in
  List.iter
    (fun (e : Suite.entry) ->
      let leg = L.analyze (D.compile e.source) in
      let n = float_of_int (List.length (L.types leg)) in
      totals := !totals +. 1.0;
      strict := !strict +. (100.0 *. float_of_int (L.legal_count leg) /. n);
      relax :=
        !relax +. (100.0 *. float_of_int (L.legal_count ~relax:true leg) /. n))
    Suite.roster;
  let avg_s = !strict /. !totals and avg_r = !relax /. !totals in
  Alcotest.(check bool)
    (Printf.sprintf "avg legal %.1f ~ 20.9" avg_s)
    true
    (Float.abs (avg_s -. Suite.paper_avg_legal_pct) < 5.0);
  Alcotest.(check bool)
    (Printf.sprintf "avg relax %.1f ~ 65.7" avg_r)
    true
    (Float.abs (avg_r -. Suite.paper_avg_relax_pct) < 8.0)

let () =
  let per_entry mk =
    List.map
      (fun (e : Suite.entry) -> Alcotest.test_case e.name `Quick (mk e))
      (Suite.roster @ Suite.case_studies)
  in
  Alcotest.run "suite"
    [
      ("compile+run", per_entry compile_runs);
      ("legality shape", per_entry legality_shape);
      ("transform preserves output", per_entry transform_preserves);
      ("backends agree", per_entry backends_agree);
      ( "paper expectations",
        [
          Alcotest.test_case "art and peel2 peel" `Quick expected_transforms;
          Alcotest.test_case "mcf splits" `Quick mcf_split_under_pbo;
          Alcotest.test_case "table1 averages" `Quick table1_averages;
        ] );
    ]
