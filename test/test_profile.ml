(* Profile infrastructure: feedback files, collection, CFG matching,
   static estimation (SPBO), inter-procedural scaling (ISPBO). *)

module Feedback = Slo_profile.Feedback
module Collect = Slo_profile.Collect
module Matching = Slo_profile.Matching
module Staticfreq = Slo_profile.Staticfreq
module Ipscale = Slo_profile.Ipscale
module Weights = Slo_profile.Weights

let lower = Lower.lower_source
let feq = Alcotest.float 1e-6

(* ------------------------- feedback ------------------------- *)

let feedback_roundtrip () =
  let fb = Feedback.create () in
  Feedback.add_entry fb "main" 1;
  Feedback.add_edge fb "main" { line = 1; col = 2; ord = 0 }
    { line = 3; col = 4; ord = 1 } 42;
  Feedback.add_dcache fb "main" { line = 5; col = 6; ord = 0 }
    { misses = 7; latency = 700 };
  let fb2 = Feedback.of_string (Feedback.to_string fb) in
  Alcotest.(check int) "entry" 1 (Feedback.entry_count fb2 "main");
  Alcotest.(check int) "edge" 42
    (Feedback.edge_count fb2 "main" { line = 1; col = 2; ord = 0 }
       { line = 3; col = 4; ord = 1 });
  (match Feedback.dcache_stats fb2 "main" { line = 5; col = 6; ord = 0 } with
  | Some { misses = 7; latency = 700 } -> ()
  | _ -> Alcotest.fail "dcache lost");
  Alcotest.(check bool) "bad input rejected" true
    (match Feedback.of_string "garbage line" with
    | exception Failure _ -> true
    | _ -> false)

let feedback_accumulates () =
  let fb = Feedback.create () in
  let s = { Feedback.line = 1; col = 1; ord = 0 } in
  Feedback.add_edge fb "f" s s 5;
  Feedback.add_edge fb "f" s s 6;
  Alcotest.(check int) "summed" 11 (Feedback.edge_count fb "f" s s)

let signatures_disambiguate () =
  (* two blocks on the same source position get distinct ordinals *)
  let prog = lower "int main(int a) { if (a) { a = 1; } else { a = 2; } return a; }" in
  let f = Option.get (Ir.find_func prog "main") in
  let sigs = Feedback.block_sigs f in
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) sigs [] in
  let uniq = List.sort_uniq compare all in
  Alcotest.(check int) "signatures unique" (List.length all)
    (List.length uniq)

(* ------------------------- collect + match ------------------------- *)

let loop10 =
  "int work(int k) { int j; int s = 0;\n\
   for (j = 0; j < k; j++) { s = s + j; } return s; }\n\
   int main() { int i; int t = 0;\n\
   for (i = 0; i < 10; i++) { t = t + work(5); }\n\
   return t % 256; }"

let collect_and_match () =
  let prog = lower loop10 in
  let fb, stats = Collect.collect prog in
  Alcotest.(check int) "main entered once" 1 (Feedback.entry_count fb "main");
  Alcotest.(check int) "work entered 10x" 10 (Feedback.entry_count fb "work");
  Alcotest.(check bool) "program ran" true (stats.result.steps > 0);
  let m = Matching.apply prog fb in
  Alcotest.(check int) "all edges matched" 0 m.unmatched_edges;
  let wc = Option.get (Matching.func_counts m "work") in
  (* work's loop header: (1 entry + 5 back edges) x 10 calls *)
  let max_block = Array.fold_left max 0.0 wc.block in
  Alcotest.check feq "hottest block = 60" 60.0 max_block;
  let mc = Option.get (Matching.func_counts m "main") in
  Alcotest.check feq "main entry weight" 1.0 mc.entry

let match_robust_to_perturbation () =
  (* matching against a different program only matches what exists *)
  let prog1 = lower loop10 in
  let fb, _ = Collect.collect prog1 in
  let prog2 =
    lower
      "int main() { int i; int t = 0;\n\
       for (i = 0; i < 3; i++) { t = t + i; }\n\
       return t; }"
  in
  let m = Matching.apply prog2 fb in
  (* nothing crashes; unmatched edges are only dropped, counts stay sane *)
  let mc = Option.get (Matching.func_counts m "main") in
  Alcotest.(check bool) "counts non-negative" true
    (Array.for_all (fun c -> c >= 0.0) mc.block)

let pbo_matches_truth () =
  (* PBO block weights equal real execution counts *)
  let prog = lower loop10 in
  let fb, _ = Collect.collect prog in
  let bw = Weights.block_weights prog Weights.PBO ~feedback:(Some fb) in
  let counts = Hashtbl.create 16 in
  let vm =
    Slo_vm.Interp.create
      ~edge_hook:(fun f _src dst ->
        let k = (f, dst) in
        Hashtbl.replace counts k
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
      prog
  in
  ignore (Slo_vm.Interp.run vm);
  let work = Hashtbl.find bw "work" in
  Hashtbl.iter
    (fun (f, bid) n ->
      if String.equal f "work" then
        Alcotest.check feq
          (Printf.sprintf "block %d" bid)
          (float_of_int n) work.(bid))
    counts

(* ------------------------- SPBO ------------------------- *)

let spbo_loop_freq () =
  let prog = lower "int main(int n) { int i; int s = 0;\n\
                    for (i = 0; i < n; i++) { s = s + i; } return s; }" in
  let f = Option.get (Ir.find_func prog "main") in
  let cfg = Cfg.build f in
  let forest = Loop.compute cfg in
  let est = Staticfreq.estimate cfg forest in
  (* entry block has frequency 1 *)
  Alcotest.check feq "entry" 1.0 est.bfreq.(Cfg.entry cfg);
  (* the loop body should be visited about 1/(1-0.88) ~ 8.3 times *)
  let body_freq = Array.fold_left max 0.0 est.bfreq in
  Alcotest.(check bool) "loop amplification ~8x" true
    (body_freq > 6.0 && body_freq < 10.0)

let spbo_nested_multiplies () =
  let prog =
    lower
      "int main(int n) { int i; int j; int s = 0;\n\
       for (i = 0; i < n; i++) { for (j = 0; j < n; j++) { s = s + 1; } }\n\
       return s; }"
  in
  let f = Option.get (Ir.find_func prog "main") in
  let cfg = Cfg.build f in
  let est = Staticfreq.estimate cfg (Loop.compute cfg) in
  let inner = Array.fold_left max 0.0 est.bfreq in
  Alcotest.(check bool) "nested ~8*8" true (inner > 40.0 && inner < 90.0)

let spbo_if_split () =
  let prog =
    lower
      "int main(int a) { int x = 0;\n\
       if (a > 0) { x = 1; } else { x = 2; } return x; }"
  in
  let f = Option.get (Ir.find_func prog "main") in
  let cfg = Cfg.build f in
  let est = Staticfreq.estimate cfg (Loop.compute cfg) in
  let entry = Cfg.entry cfg in
  List.iter
    (fun succ -> Alcotest.check feq "50/50" 0.5 (est.eprob (entry, succ)))
    cfg.succs.(entry)

let spbo_fp_probability () =
  let prog =
    lower
      "int main(int n) { int i; double s = 0.0;\n\
       for (i = 0; i < n; i++) { s = s + i * 0.5; } return (int)s; }"
  in
  let f = Option.get (Ir.find_func prog "main") in
  let cfg = Cfg.build f in
  let forest = Loop.compute cfg in
  let est = Staticfreq.estimate cfg forest in
  (* FP loops get 0.93: amplification 1/(1-0.93) ~ 14.3 *)
  let body = Array.fold_left max 0.0 est.bfreq in
  Alcotest.(check bool) "fp loop hotter" true (body > 11.0 && body < 16.0)

let spbo_flow_conservation () =
  (* for every non-entry block, freq = sum of incoming edge freqs *)
  let prog = lower loop10 in
  List.iter
    (fun (f : Ir.func) ->
      let cfg = Cfg.build f in
      let est = Staticfreq.estimate cfg (Loop.compute cfg) in
      Array.iter
        (fun b ->
          if b <> Cfg.entry cfg then begin
            let inflow =
              List.fold_left
                (fun acc p -> acc +. est.efreq (p, b))
                0.0 cfg.preds.(b)
            in
            Alcotest.check (Alcotest.float 1e-6)
              (Printf.sprintf "%s b%d" f.fname b)
              inflow est.bfreq.(b)
          end)
        cfg.rpo)
    prog.funcs

(* ------------------------- ISPBO ------------------------- *)

let ispbo_prog =
  "int leaf() { return 1; }\n\
   int hot() { int i; int s = 0;\n\
   for (i = 0; i < 100; i++) { s = s + leaf(); } return s; }\n\
   int cold_fn() { return leaf(); }\n\
   int main(int n) { int i; int s = 0;\n\
   for (i = 0; i < n; i++) { s = s + hot(); }\n\
   s = s + cold_fn(); return s; }"

let ispbo_scales_callees () =
  let prog = lower ispbo_prog in
  let cg = Callgraph.build prog in
  let locals = Hashtbl.create 8 in
  List.iter
    (fun (f : Ir.func) ->
      let cfg = Cfg.build f in
      Hashtbl.replace locals f.fname
        (Staticfreq.estimate cfg (Loop.compute cfg)))
    prog.funcs;
  let ips = Ipscale.compute prog ~local:(Hashtbl.find locals) cg in
  Alcotest.check feq "main once" 1.0 (Ipscale.global_count ips "main");
  let hot = Ipscale.global_count ips "hot" in
  let cold = Ipscale.global_count ips "cold_fn" in
  let leaf = Ipscale.global_count ips "leaf" in
  Alcotest.(check bool) "hot called ~8x" true (hot > 6.0 && hot < 10.0);
  Alcotest.check feq "cold called once" 1.0 cold;
  Alcotest.(check bool) "leaf amplified through hot" true (leaf > hot);
  (* the exponent separates hot from cold further *)
  let sc15 = Ipscale.scaled_block_counts ~exponent:1.5 ips "hot" in
  let sc10 = Ipscale.scaled_block_counts ~exponent:1.0 ips "hot" in
  Alcotest.(check bool) "exponent amplifies" true
    (Array.fold_left max 0.0 sc15 > Array.fold_left max 0.0 sc10)

let ispbo_recursion_terminates () =
  let prog =
    lower
      "int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }\n\
       int main() { return fact(5); }"
  in
  let cg = Callgraph.build prog in
  let locals = Hashtbl.create 8 in
  List.iter
    (fun (f : Ir.func) ->
      let cfg = Cfg.build f in
      Hashtbl.replace locals f.fname
        (Staticfreq.estimate cfg (Loop.compute cfg)))
    prog.funcs;
  let ips = Ipscale.compute prog ~local:(Hashtbl.find locals) cg in
  Alcotest.(check bool) "finite" true
    (Float.is_finite (Ipscale.global_count ips "fact"));
  Alcotest.(check bool) "positive" true (Ipscale.global_count ips "fact" > 0.0)

let ispbo_addr_taken_fallback () =
  let prog =
    lower
      "typedef int (*cb)(int);\n\
       int handler(int x) { return x + 1; }\n\
       int main() { cb f; f = (&handler); return f(1); }"
  in
  let cg = Callgraph.build prog in
  let locals = Hashtbl.create 8 in
  List.iter
    (fun (f : Ir.func) ->
      let cfg = Cfg.build f in
      Hashtbl.replace locals f.fname
        (Staticfreq.estimate cfg (Loop.compute cfg)))
    prog.funcs;
  let ips = Ipscale.compute prog ~local:(Hashtbl.find locals) cg in
  Alcotest.check feq "address-taken fallback" 1.0
    (Ipscale.global_count ips "handler")

(* ------------------------- weights registry ------------------------- *)

let weights_registry () =
  let prog = lower loop10 in
  Alcotest.(check bool) "dcache schemes rejected" true
    (match Weights.block_weights prog Weights.DMISS ~feedback:None with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "PBO needs profile" true
    (match Weights.block_weights prog Weights.PBO ~feedback:None with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let bw = Weights.block_weights prog Weights.ISPBO ~feedback:None in
  Alcotest.(check bool) "covers all functions" true
    (Hashtbl.mem bw "main" && Hashtbl.mem bw "work");
  Alcotest.(check (list string)) "names" [ "PBO"; "PPBO"; "SPBO"; "ISPBO";
                                           "ISPBO.NO"; "ISPBO.W"; "DMISS";
                                           "DLAT"; "DMISS.NO" ]
    (List.map Weights.name Weights.all)

let () =
  Alcotest.run "profile"
    [
      ( "feedback",
        [
          Alcotest.test_case "roundtrip" `Quick feedback_roundtrip;
          Alcotest.test_case "accumulates" `Quick feedback_accumulates;
          Alcotest.test_case "signatures" `Quick signatures_disambiguate;
        ] );
      ( "collect+match",
        [
          Alcotest.test_case "collect and match" `Quick collect_and_match;
          Alcotest.test_case "perturbation" `Quick match_robust_to_perturbation;
          Alcotest.test_case "PBO = truth" `Quick pbo_matches_truth;
        ] );
      ( "spbo",
        [
          Alcotest.test_case "loop freq" `Quick spbo_loop_freq;
          Alcotest.test_case "nested" `Quick spbo_nested_multiplies;
          Alcotest.test_case "if split" `Quick spbo_if_split;
          Alcotest.test_case "fp probability" `Quick spbo_fp_probability;
          Alcotest.test_case "flow conservation" `Quick spbo_flow_conservation;
        ] );
      ( "ispbo",
        [
          Alcotest.test_case "scales callees" `Quick ispbo_scales_callees;
          Alcotest.test_case "recursion" `Quick ispbo_recursion_terminates;
          Alcotest.test_case "addr-taken fallback" `Quick
            ispbo_addr_taken_fallback;
        ] );
      ( "weights",
        [ Alcotest.test_case "registry" `Quick weights_registry ] );
    ]
