(* Source-located diagnostics: the dataflow framework, dead-store
   analysis, legality witnesses, the check pipeline and its SARIF
   export. *)

module A = Slo_advice.Advice
module Sarif = Slo_advice.Sarif
module L = Slo_core.Legality
module H = Slo_core.Heuristics
module D = Slo_core.Driver
module W = Slo_profile.Weights
module Json = Slo_util.Json

let lower = Lower.lower_source

(* the acceptance program: a CSTF cast, an ATKN field address and a
   dead field, each on its own line *)
let demo_lines =
  [|
    "struct hot { long key; long pad; };";
    "struct cur { long pos; long cap; };";
    "long sink;";
    "long peek(long *p) { return *p; }";
    "int main() { long i; long acc; long *raw; long *q;";
    "  struct hot *h; struct cur *c;";
    "  h = (struct hot*)malloc(16 * sizeof(struct hot));";
    "  c = (struct cur*)malloc(4 * sizeof(struct cur));";
    "  for (i = 0; i < 16; i++) { h[i].key = i; h[i].pad = 0; }";
    "  for (i = 0; i < 4; i++) { c[i].pos = i; c[i].cap = 64; }";
    "  acc = 0; for (i = 0; i < 16; i++) { acc = acc + h[i].key; }";
    "  raw = (long *) h;";
    "  sink = raw[0];";
    "  q = &c[0].pos;";
    "  acc = acc + peek(q) + c[0].cap;";
    "  printf(\"%ld\\n\", acc + sink); return 0; }";
  |]

let demo_src = String.concat "\n" (Array.to_list demo_lines) ^ "\n"

let find_diag diags rule typ =
  match
    List.find_opt
      (fun (d : A.diagnostic) -> d.d_rule = rule && d.d_typ = typ)
      diags
  with
  | Some d -> d
  | None -> Alcotest.failf "no %s diagnostic for type %s" rule typ

let line_of (d : A.diagnostic) =
  match d.d_loc with
  | Some l -> l.Ir.Loc.line
  | None -> Alcotest.failf "%s diagnostic carries no location" d.d_rule

let acceptance_trio () =
  let diags = A.check (lower demo_src) in
  (* the raw-pointer cast of h on line 12 *)
  let cstf = find_diag diags "CSTF" "hot" in
  Alcotest.(check int) "CSTF line" 12 (line_of cstf);
  Alcotest.(check int) "CSTF col (the cast)"
    (1 + String.index demo_lines.(11) '(')
    (Option.get cstf.d_loc).Ir.Loc.col;
  Alcotest.(check bool) "CSTF invalidates" true cstf.d_invalidating;
  (* the address-of: `q = &c[0].pos;` *)
  let atkn = find_diag diags "ATKN" "cur" in
  Alcotest.(check int) "ATKN line" 14 (line_of atkn);
  Alcotest.(check bool) "ATKN points into the &-expression" true
    ((Option.get atkn.d_loc).Ir.Loc.col >= 1 + String.index demo_lines.(13) '&');
  Alcotest.(check bool) "ATKN invalidates" true atkn.d_invalidating;
  (* the dead field: `h[i].pad = 0;` in the init loop *)
  let dead = find_diag diags "DEADFIELD" "hot" in
  Alcotest.(check int) "DEADFIELD line" 9 (line_of dead);
  Alcotest.(check bool) "dead field is advisory" false dead.d_invalidating;
  Alcotest.(check bool) "names the field" true
    (Astring.String.is_infix ~affix:"hot.pad" dead.d_msg);
  (* each finding carries the allocation site of its type *)
  List.iter
    (fun (d : A.diagnostic) ->
      if d.d_rule = "CSTF" then
        Alcotest.(check bool) "CSTF carries alloc note" true
          (List.exists
             (fun (n : A.note) ->
               Astring.String.is_infix ~affix:"allocated here" n.n_msg
               && (match n.n_loc with Some l -> l.Ir.Loc.line = 7 | None -> false))
             d.d_notes))
    diags;
  Alcotest.(check int) "two invalidating findings" 2
    (A.invalidating_count diags)

let relax_flips_severities () =
  let prog = lower demo_src in
  let strict = A.check prog and relaxed = A.check ~relax:true prog in
  Alcotest.(check bool) "CSTF error when strict" true
    ((find_diag strict "CSTF" "hot").d_severity = A.Error);
  Alcotest.(check bool) "CSTF warning when relaxed" true
    ((find_diag relaxed "CSTF" "hot").d_severity = A.Warning);
  Alcotest.(check bool) "ATKN warning when relaxed" true
    ((find_diag relaxed "ATKN" "cur").d_severity = A.Warning);
  (* relaxed counting would accept 'hot', but points-to cannot refute the
     cast: the PTS finding becomes the invalidating one *)
  let pts_strict = find_diag strict "PTS" "hot" in
  let pts_relaxed = find_diag relaxed "PTS" "hot" in
  Alcotest.(check bool) "PTS advisory when strict" false
    pts_strict.d_invalidating;
  Alcotest.(check bool) "PTS invalidates when relaxed" true
    pts_relaxed.d_invalidating;
  Alcotest.(check int) "one invalidating finding under relax" 1
    (A.invalidating_count relaxed)

let render_has_carets () =
  let prog = lower demo_src in
  let out = A.render ~src:demo_src ~file:"demo.mc" (A.check prog) in
  Alcotest.(check bool) "header present" true
    (Astring.String.is_infix ~affix:"demo.mc:12:" out);
  Alcotest.(check bool) "snippet echoed" true
    (Astring.String.is_infix ~affix:"raw = (long *) h;" out);
  Alcotest.(check bool) "caret present" true
    (Astring.String.is_infix ~affix:"^" out);
  Alcotest.(check bool) "note rendered" true
    (Astring.String.is_infix ~affix:"note:" out)

(* ------------------------------------------------------------------ *)
(* SARIF 2.1.0 shape                                                   *)
(* ------------------------------------------------------------------ *)

let get path j =
  let rec go path j =
    match (path, j) with
    | [], _ -> j
    | k :: rest, _ -> (
      match int_of_string_opt k with
      | Some i -> (
        match j with
        | Json.List l when i < List.length l -> go rest (List.nth l i)
        | _ -> Alcotest.failf "no index %s" k)
      | None -> (
        match Json.member k j with
        | Some v -> go rest v
        | None -> Alcotest.failf "no member %s" k))
  in
  go path j

let expect_string path j =
  match get path j with
  | Json.String s -> s
  | _ -> Alcotest.failf "%s is not a string" (String.concat "." path)

let sarif_shape () =
  let diags = A.check (lower demo_src) in
  let j = Json.of_string (Sarif.to_string [ ("demo.mc", diags) ]) in
  Alcotest.(check string) "$schema"
    "https://json.schemastore.org/sarif-2.1.0.json"
    (expect_string [ "$schema" ] j);
  Alcotest.(check string) "version" "2.1.0" (expect_string [ "version" ] j);
  Alcotest.(check string) "driver name" "slopt"
    (expect_string [ "runs"; "0"; "tool"; "driver"; "name" ] j);
  let rules =
    match get [ "runs"; "0"; "tool"; "driver"; "rules" ] j with
    | Json.List l -> l
    | _ -> Alcotest.fail "rules is not a list"
  in
  Alcotest.(check bool) "rules listed" true (rules <> []);
  List.iter
    (fun r ->
      ignore (expect_string [ "id" ] r);
      ignore (expect_string [ "shortDescription"; "text" ] r))
    rules;
  let results =
    match get [ "runs"; "0"; "results" ] j with
    | Json.List l -> l
    | _ -> Alcotest.fail "results is not a list"
  in
  Alcotest.(check int) "one result per diagnostic" (List.length diags)
    (List.length results);
  List.iter
    (fun r ->
      let level = expect_string [ "level" ] r in
      Alcotest.(check bool) "level vocabulary" true
        (List.mem level [ "error"; "warning"; "note" ]);
      ignore (expect_string [ "ruleId" ] r);
      ignore (expect_string [ "message"; "text" ] r);
      Alcotest.(check string) "artifact uri" "demo.mc"
        (expect_string
           [ "locations"; "0"; "physicalLocation"; "artifactLocation"; "uri" ]
           r);
      match
        get [ "locations"; "0"; "physicalLocation"; "region" ] r
      with
      | Json.Obj _ as region ->
        (match get [ "startLine" ] region with
        | Json.Int n -> Alcotest.(check bool) "startLine >= 1" true (n >= 1)
        | _ -> Alcotest.fail "startLine is not an int");
        (match get [ "startColumn" ] region with
        | Json.Int n -> Alcotest.(check bool) "startColumn >= 1" true (n >= 1)
        | _ -> Alcotest.fail "startColumn is not an int")
      | _ -> Alcotest.fail "region is not an object")
    results

(* ------------------------------------------------------------------ *)
(* Locations are behaviourally inert                                   *)
(* ------------------------------------------------------------------ *)

let scrub_locs prog =
  let p = Ircopy.copy_program prog in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          b.instrs <-
            List.map (fun (i : Ir.instr) -> { i with iloc = Ir.Loc.dummy })
              b.instrs;
          b.bloc <- Ir.Loc.dummy)
        f.fblocks)
    p.funcs;
  p

let locations_never_change_behaviour () =
  List.iter
    (fun (e : Slo_suite.Suite.entry) ->
      let prog = lower e.source in
      let scrubbed = scrub_locs prog in
      let m1 = D.measure ~args:e.train_args prog in
      let m2 = D.measure ~args:e.train_args scrubbed in
      Alcotest.(check string) (e.name ^ " output") m1.m_result.output
        m2.m_result.output;
      Alcotest.(check int) (e.name ^ " steps") m1.m_result.steps
        m2.m_result.steps;
      let decide p =
        let leg, aff = D.analyze p ~scheme:W.ISPBO ~feedback:None in
        List.map
          (fun (d : H.decision) ->
            (d.d_typ, Option.map H.plan_summary d.d_plan))
          (H.decide p leg aff ~scheme:W.ISPBO)
      in
      Alcotest.(check bool) (e.name ^ " decisions agree") true
        (decide prog = decide scrubbed))
    Slo_suite.Suite.roster

let require_locs_roster () =
  List.iter
    (fun (e : Slo_suite.Suite.entry) ->
      let prog = lower e.source in
      Alcotest.(check (list Alcotest.reject)) (e.name ^ " lowered locs") []
        (Verify.program ~require_locs:true prog);
      let leg, aff = D.analyze prog ~scheme:W.ISPBO ~feedback:None in
      let decisions = H.decide prog leg aff ~scheme:W.ISPBO in
      let transformed =
        D.transform_with_plans ~verify:true prog (H.plans decisions)
      in
      Alcotest.(check (list Alcotest.reject)) (e.name ^ " transformed locs")
        []
        (Verify.program ~require_locs:true transformed))
    Slo_suite.Suite.roster

let require_locs_catches_scrubbed () =
  let prog = scrub_locs (lower demo_src) in
  Alcotest.(check bool) "scrubbed program rejected" true
    (Verify.program ~require_locs:true prog <> []);
  Alcotest.(check bool) "still well-formed without the flag" true
    (Verify.ok prog)

(* every type the heuristics reject for legality carries a witness *)
let rejected_types_carry_witnesses () =
  List.iter
    (fun (e : Slo_suite.Suite.entry) ->
      let prog = lower e.source in
      let leg = L.analyze prog in
      List.iter
        (fun typ ->
          let info = L.info leg typ in
          List.iter
            (fun r ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s %s witnessed" e.name typ
                   (L.reason_name r))
                true
                (L.witnesses_for leg typ r <> []))
            info.invalid)
        (L.types leg))
    Slo_suite.Suite.roster

(* ------------------------------------------------------------------ *)
(* Dataflow framework and dead stores                                  *)
(* ------------------------------------------------------------------ *)

module IdSet = Set.Make (Int)

module Reach = Dataflow.Make (struct
  type t = IdSet.t

  let bottom = IdSet.empty
  let equal = IdSet.equal
  let join = IdSet.union
end)

let forward_reaches_over_diamond () =
  let prog =
    lower
      "int main(int x) { long a;\n\
       if (x) { a = 1; } else { a = 2; }\n\
       return (int)a; }"
  in
  let f = List.find (fun (f : Ir.func) -> f.Ir.fname = "main") prog.funcs in
  let cfg = Cfg.build f in
  let sol =
    Reach.forward cfg ~init:IdSet.empty ~transfer:(fun b s ->
        IdSet.add b.Ir.bid s)
  in
  (* the exit block sees every reachable block through the join *)
  let exit_b =
    List.find
      (fun (b : Ir.block) -> match b.btermin with Ir.Tret _ -> true | _ -> false)
      f.fblocks
  in
  let seen = sol.Reach.after.(exit_b.bid) in
  Array.iter
    (fun bid ->
      Alcotest.(check bool)
        (Printf.sprintf "block %d reaches exit" bid)
        true (IdSet.mem bid seen))
    cfg.Cfg.rpo

let deadstore_src =
  "struct s { long a; long b; };\n\
   struct s *p;\n\
   int main() { long acc;\n\
   p = (struct s*)malloc(4 * sizeof(struct s));\n\
   p->a = 1;\n\
   acc = p->a;\n\
   p->a = 2;\n\
   p->b = 3;\n\
   return (int)acc; }"

let store_after_last_read () =
  let stores = Deadstore.analyze (lower deadstore_src) in
  let at line =
    List.filter
      (fun (d : Deadstore.store) -> d.ds_loc.Ir.Loc.line = line)
      stores
  in
  (* p->a = 1 is read on line 6: live, not reported *)
  Alcotest.(check int) "live store unreported" 0 (List.length (at 5));
  (* p->a = 2 follows the last read of the field: dead on every path,
     but the field itself is read (flow-sensitive finding) *)
  (match at 7 with
  | [ d ] ->
    Alcotest.(check bool) "field a is read elsewhere" false d.ds_never_read
  | l -> Alcotest.failf "expected 1 dead store at line 7, got %d" (List.length l));
  (* p->b is never read anywhere *)
  (match at 8 with
  | [ d ] -> Alcotest.(check bool) "b never read" true d.ds_never_read
  | l -> Alcotest.failf "expected 1 store at line 8, got %d" (List.length l));
  Alcotest.(check (list (pair string int))) "never-read fields" [ ("s", 1) ]
    (Deadstore.never_read_fields stores)

let branch_keeps_store_live () =
  let stores =
    Deadstore.analyze
      (lower
         "struct s { long a; long b; };\n\
          struct s *p;\n\
          int main(int x) {\n\
          p = (struct s*)malloc(4 * sizeof(struct s));\n\
          p->a = 1;\n\
          if (x) { p->a = 2; }\n\
          p->b = (long)x;\n\
          return (int)p->a; }")
  in
  (* the store at line 5 is read on the fall-through path: live *)
  Alcotest.(check bool) "conditional overwrite keeps it live" true
    (List.for_all
       (fun (d : Deadstore.store) -> d.ds_loc.Ir.Loc.line <> 5)
       stores)

let escaping_address_suppresses () =
  let stores =
    Deadstore.analyze
      (lower
         "struct s { long a; long b; };\n\
          struct s *p;\n\
          int main() { long *q;\n\
          p = (struct s*)malloc(4 * sizeof(struct s));\n\
          q = &p->a;\n\
          p->a = 1;\n\
          p->b = 2;\n\
          return (int)*q; }")
  in
  (* &p->a escapes into q: stores to a must never be reported *)
  Alcotest.(check bool) "escaped field not reported" true
    (List.for_all (fun (d : Deadstore.store) -> d.ds_field <> 0) stores)

let extern_call_reads_everything () =
  let stores =
    Deadstore.analyze
      (lower
         "struct s { long a; long b; };\n\
          extern long lib(struct s*, long);\n\
          struct s *p;\n\
          int main() {\n\
          p = (struct s*)malloc(4 * sizeof(struct s));\n\
          p->a = 1;\n\
          p->b = 2;\n\
          return (int)lib(p, 0); }")
  in
  Alcotest.(check int) "library call may read both fields" 0
    (List.length stores)

(* the advisory report and check agree on the invalidation reasons *)
let advisor_reasons_match_check () =
  let prog = lower demo_src in
  let leg, aff = D.analyze prog ~scheme:W.ISPBO ~feedback:None in
  let decisions = H.decide prog leg aff ~scheme:W.ISPBO in
  let adv = Slo_core.Advisor.build prog leg aff ~decisions ~dcache:None in
  let report = Slo_core.Advisor.report adv in
  Alcotest.(check bool) "CSTF witness line in report" true
    (Astring.String.is_infix ~affix:"invalid: CSTF at 12:" report);
  Alcotest.(check bool) "ATKN witness line in report" true
    (Astring.String.is_infix ~affix:"invalid: ATKN at 14:" report)

(* ------------------------------------------------------------------ *)
(* The shipped pool demo, diagnostics pinned exactly                    *)
(* ------------------------------------------------------------------ *)

(* `dune runtest` runs from the test directory, `dune exec` from the
   project root: accept the example path relative to either *)
let read_example name =
  let path =
    if Sys.file_exists name then name else Filename.concat ".." name
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* examples/pool_demo.mc is a dune dep of this test: the positive half
   (struct item, a single-malloc ring) must earn a POOL note anchored
   at the allocation, and the negative half (struct entry, whose link
   cell address escapes into the global `hook`) must earn a NOPOOL
   note anchored at the aliasing store. Line numbers are pinned to the
   shipped file so the demo and its documentation cannot drift. *)
let pool_demo_diagnostics () =
  let src = read_example "examples/pool_demo.mc" in
  let diags = A.check (lower src) in
  let pool = find_diag diags "POOL" "item" in
  Alcotest.(check int) "POOL anchored at the malloc" 32 (line_of pool);
  Alcotest.(check bool) "POOL is a note" true (pool.d_severity = A.Note);
  Alcotest.(check bool) "POOL is advisory" false pool.d_invalidating;
  Alcotest.(check bool) "POOL names the link field" true
    (Astring.String.is_infix ~affix:"linked structure via next" pool.d_msg);
  Alcotest.(check bool) "POOL claims a single allocation site" true
    (Astring.String.is_infix ~affix:"single allocation site" pool.d_msg);
  (match pool.d_notes with
  | [ n ] ->
    Alcotest.(check bool) "uniqueness witness on the link field" true
      (Astring.String.is_infix ~affix:"link field 'item.next'" n.n_msg)
  | l -> Alcotest.failf "expected 1 POOL note, got %d" (List.length l));
  let nopool = find_diag diags "NOPOOL" "entry" in
  Alcotest.(check int) "NOPOOL anchored at the aliasing store" 60
    (line_of nopool);
  Alcotest.(check bool) "NOPOOL is a note" true (nopool.d_severity = A.Note);
  Alcotest.(check bool) "NOPOOL is advisory" false nopool.d_invalidating;
  Alcotest.(check bool) "NOPOOL carries the interior-alias witness" true
    (Astring.String.is_infix
       ~affix:"interior pointer into entry stored to memory" nopool.d_msg);
  (* `&entries[2].next` also trips the legality checker on the same line *)
  let atkn = find_diag diags "ATKN" "entry" in
  Alcotest.(check int) "ATKN on the &-expression" 60 (line_of atkn);
  Alcotest.(check bool) "ATKN invalidates" true atkn.d_invalidating;
  Alcotest.(check int) "the alias is the only invalidating finding" 1
    (A.invalidating_count diags);
  (* the ring with the clean shape never earns a NOPOOL, and the
     aliased one never earns a POOL *)
  Alcotest.(check bool) "no NOPOOL for item" true
    (not
       (List.exists
          (fun (d : A.diagnostic) -> d.d_rule = "NOPOOL" && d.d_typ = "item")
          diags));
  Alcotest.(check bool) "no POOL for entry" true
    (not
       (List.exists
          (fun (d : A.diagnostic) -> d.d_rule = "POOL" && d.d_typ = "entry")
          diags))

let () =
  Alcotest.run "advice"
    [
      ( "check",
        [
          Alcotest.test_case "acceptance trio" `Quick acceptance_trio;
          Alcotest.test_case "relax severities" `Quick relax_flips_severities;
          Alcotest.test_case "caret rendering" `Quick render_has_carets;
          Alcotest.test_case "advisor agreement" `Quick
            advisor_reasons_match_check;
          Alcotest.test_case "pool demo pinned" `Quick pool_demo_diagnostics;
        ] );
      ("sarif", [ Alcotest.test_case "2.1.0 shape" `Quick sarif_shape ]);
      ( "locations",
        [
          Alcotest.test_case "behaviourally inert" `Slow
            locations_never_change_behaviour;
          Alcotest.test_case "roster carries locs" `Slow require_locs_roster;
          Alcotest.test_case "verifier catches scrubbed" `Quick
            require_locs_catches_scrubbed;
          Alcotest.test_case "rejections witnessed" `Quick
            rejected_types_carry_witnesses;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "forward diamond" `Quick
            forward_reaches_over_diamond;
          Alcotest.test_case "store after last read" `Quick
            store_after_last_read;
          Alcotest.test_case "branch keeps live" `Quick branch_keeps_store_live;
          Alcotest.test_case "escape suppresses" `Quick
            escaping_address_suppresses;
          Alcotest.test_case "extern reads all" `Quick
            extern_call_reads_everything;
        ] );
    ]
