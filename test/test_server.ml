(* The advice daemon: wire protocol codecs, framing, and end-to-end
   behaviour of an in-process server — caching, structured errors,
   deadlines, the connection limit, and graceful drain (both the
   shutdown request and SIGTERM).

   Every end-to-end test spawns its own server on a private socket in a
   background thread with [handle_sigterm = false] (except the SIGTERM
   test), so tests are independent and the suite leaves no processes or
   socket files behind. *)

module P = Slo_server.Protocol
module Server = Slo_server.Server
module Client = Slo_server.Client
module Json = Slo_util.Json

(* ---------------- sources ---------------- *)

(* Figure-1-shaped hot/cold struct, sized for test speed: advise and
   bench both have to run the program (profile collection, before/after
   measurement), so keep the trip counts small. [tag] makes each test's
   source distinct, i.e. a distinct cache key. *)
let hot_cold_src tag =
  Printf.sprintf
    "struct s%s { long hot1; double cold1; long hot2; double cold2; };\n\
     struct s%s *arr;\n\
     long n;\n\
     int main() { long it; long i; long s = 0; n = 64;\n\
     arr = (struct s%s*)malloc(n * sizeof(struct s%s));\n\
     for (it = 0; it < n; it++) { arr[it].hot1 = it; arr[it].hot2 = 2*it;\n\
     arr[it].cold1 = 0.5; arr[it].cold2 = 0.25; }\n\
     for (it = 0; it < 10; it++) {\n\
     for (i = 0; i < n; i++) { s = s + arr[i].hot1 + arr[i].hot2; } }\n\
     printf(\"%%ld\\n\", s); return 0; }\n"
    tag tag tag tag

(* a single-malloc linked ring: the shape analysis proves it poolable,
   so an advise with pool=true decides a pooling plan for it *)
let ring_src tag =
  Printf.sprintf
    "struct r%s { long w; struct r%s *next; };\n\
     struct r%s *items;\n\
     int main() { long i; long acc; struct r%s *p;\n\
     items = (struct r%s*)malloc(16 * sizeof(struct r%s));\n\
     for (i = 0; i < 16; i++) { items[i].w = i;\n\
     items[i].next = items + ((i + 1) %% 16); }\n\
     acc = 0; p = items;\n\
     for (i = 0; i < 48; i++) { acc = acc + p->w; p = p->next; }\n\
     printf(\"%%ld\\n\", acc); return 0; }\n"
    tag tag tag tag tag tag

(* a slow program: enough iterations that it outlives a 1 ms deadline *)
let slow_src tag =
  Printf.sprintf
    "struct t%s { long a; long b; };\n\
     int main() { long i; long j; long s = 0;\n\
     for (i = 0; i < 2000; i++) { for (j = 0; j < 2000; j++) {\n\
     s = s + i * j; } }\n\
     printf(\"%%ld\\n\", s); return 0; }\n"
    tag

(* ---------------- harness ---------------- *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "slo-test-%d-%d.sock" (Unix.getpid ()) !n)

(* The harness tracks every connection a test opens so that a failing
   test cannot leak one: a leaked connection can pin the server at its
   connection limit, the finally's shutdown request then gets refused
   as [overloaded], and [Thread.join] hangs the whole suite. *)
let with_server ?(jobs = 1) ?(max_conns = 16) ?(handle_sigterm = false)
    ?listen ?cache_dir ?(high_watermark = 0) ?(low_watermark = 0) f =
  let socket_path = fresh_socket () in
  let cfg =
    { (Server.default_config ~socket_path) with
      jobs;
      max_conns;
      handle_sigterm;
      listen;
      cache_dir;
      high_watermark;
      low_watermark;
    }
  in
  let th = Thread.create Server.run cfg in
  let live = ref [] in
  let lmx = Mutex.create () in
  let connect () =
    let c = Client.connect_socket ~retry_for_s:10.0 ~socket:socket_path () in
    Mutex.lock lmx;
    live := c :: !live;
    Mutex.unlock lmx;
    c
  in
  let close c =
    Mutex.lock lmx;
    live := List.filter (fun c' -> c' != c) !live;
    Mutex.unlock lmx;
    Client.close c
  in
  Fun.protect
    ~finally:(fun () ->
      (* close leftovers (only present when the test body raised) *)
      List.iter (fun c -> try Client.close c with _ -> ()) !live;
      (* shut the server down; the refusal retry covers the window
         where closed connections are not yet deregistered *)
      let rec request_shutdown attempts =
        if attempts > 0 then
          match Client.connect_socket ~retry_for_s:0.0 ~socket:socket_path () with
          | exception _ -> () (* already drained *)
          | conn -> (
            match Client.rpc conn P.Shutdown with
            | P.R_shutdown | (exception _) -> Client.close conn
            | _reply ->
              Client.close conn;
              Unix.sleepf 0.05;
              request_shutdown (attempts - 1))
      in
      request_shutdown 100;
      Thread.join th;
      if Sys.file_exists socket_path then Sys.remove socket_path)
    (fun () -> f ~connect ~close socket_path)

let advise ?scheme ?(pool = false) ?deadline_ms src =
  P.Advise { src; scheme; args = []; pool; deadline_ms }

let bench ?scheme ?backend ?deadline_ms src =
  P.Bench { src; scheme; backend; args = []; deadline_ms }

let expect_error name code reply =
  match reply with
  | P.R_error e ->
    Alcotest.(check string)
      (name ^ " code")
      (P.error_code_name code)
      (P.error_code_name e.code)
  | _ -> Alcotest.failf "%s: expected %s error" name (P.error_code_name code)

(* ---------------- framing ---------------- *)

(* a temp file, not a pipe: a 100 KB frame would deadlock a same-thread
   pipe writer against the 64 KB kernel buffer *)
let frames_via_file payloads k =
  let path = Filename.temp_file "slo_frames" ".bin" in
  let oc = open_out_bin path in
  List.iter (P.write_frame oc) payloads;
  close_out oc;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () ->
      close_in ic;
      Sys.remove path)
    (fun () -> k ic)

let framing_roundtrip () =
  let payloads = [ "{}"; ""; String.make 100_000 'x'; "{\"k\":\"\xffbin\"}" ] in
  frames_via_file payloads (fun ic ->
      List.iter
        (fun expect ->
          match P.read_frame ic with
          | Some got -> Alcotest.(check string) "payload" expect got
          | None -> Alcotest.fail "unexpected EOF")
        payloads;
      Alcotest.(check bool) "clean EOF is None" true (P.read_frame ic = None))

let framing_errors () =
  let raw s k =
    let r, w = Unix.pipe () in
    let oc = Unix.out_channel_of_descr w in
    let ic = Unix.in_channel_of_descr r in
    output_string oc s;
    close_out oc;
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> k ic)
  in
  let bad name s =
    raw s (fun ic ->
        match P.read_frame ic with
        | exception P.Framing_error _ -> ()
        | Some _ | None -> Alcotest.failf "%s: expected Framing_error" name)
  in
  bad "garbage length" "abc\nxyz";
  bad "negative length" "-3\nxyz";
  bad "missing newline" "12345678901234567890";
  bad "EOF mid-payload" "10\nabc";
  bad "EOF mid-length" "123";
  bad "over-limit frame" (string_of_int (P.max_frame_bytes + 1) ^ "\n")

(* ---------------- codecs ---------------- *)

let codec_error_codes () =
  let all =
    [
      P.Bad_request; P.Parse_error; P.Type_error; P.Legality_error;
      P.Worker_crash; P.Timeout; P.Overloaded; P.Shutting_down;
    ]
  in
  List.iter
    (fun c ->
      let name = P.error_code_name c in
      Alcotest.(check bool)
        ("roundtrip " ^ name)
        true
        (P.error_code_of_name name = Some c))
    all;
  Alcotest.(check bool) "unknown name" true (P.error_code_of_name "nope" = None)

let codec_requests () =
  let roundtrip req =
    match P.request_of_json (Json.of_string (Json.to_string (P.json_of_request req))) with
    | Ok got -> Alcotest.(check bool) "request roundtrip" true (got = req)
    | Error e -> Alcotest.failf "decode failed: %s" e
  in
  roundtrip (advise "int main() { return 0; }");
  roundtrip
    (P.Advise
       {
         src = "x";
         scheme = Some "spbo";
         args = [ 3; 14 ];
         pool = true;
         deadline_ms = Some 250.0;
       });
  roundtrip
    (P.Bench
       {
         src = "y";
         scheme = Some "fco";
         backend = Some "closure";
         args = [];
         deadline_ms = None;
       });
  roundtrip (P.Check { src = "z"; relax = false; deadline_ms = None });
  roundtrip (P.Check { src = "z"; relax = true; deadline_ms = Some 100.0 });
  roundtrip
    (P.Tune
       {
         src = "w";
         scheme = Some "ispbo";
         backend = None;
         args = [ 7 ];
         beam = Some 2;
         deadline_ms = Some 500.0;
       });
  roundtrip
    (P.Tune
       {
         src = "w";
         scheme = None;
         backend = Some "walk";
         args = [];
         beam = None;
         deadline_ms = None;
       });
  roundtrip P.Stats;
  roundtrip P.Shutdown;
  let bad name s =
    match P.request_of_json (Json.of_string s) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected decode error" name
  in
  bad "not an object" "[1]";
  bad "missing kind" "{\"src\":\"x\"}";
  bad "unknown kind" "{\"kind\":\"frobnicate\"}";
  bad "advise without src" "{\"kind\":\"advise\"}";
  bad "non-int args" "{\"kind\":\"advise\",\"src\":\"x\",\"args\":[\"a\"]}"

let codec_replies () =
  let roundtrip reply =
    match P.reply_of_json (Json.of_string (Json.to_string (P.json_of_reply reply))) with
    | Ok got -> Alcotest.(check bool) "reply roundtrip" true (got = reply)
    | Error e -> Alcotest.failf "decode failed: %s" e
  in
  roundtrip (P.R_advise { a_report = "report text\nwith lines"; a_cached = true });
  roundtrip
    (P.R_bench
       {
         b_cycles_before = 399301542;
         b_cycles_after = 258462741;
         b_speedup_pct = 54.5;
         b_plans = [ "peel f1_neuron: 8 pieces, 0 dead" ];
         b_cached = false;
       });
  roundtrip
    (P.R_check
       {
         c_report = "demo.mc:3:7: error: [CSTF] ...";
         c_sarif = "{\"version\": \"2.1.0\"}";
         c_invalidating = 2;
         c_cached = true;
       });
  roundtrip
    (P.R_tune
       {
         t_plans = [ "split:s:hot=0,2:cold=1,3:dead="; "pad:s__hot:bytes=8" ];
         t_heuristic_plans = [ "peel:s:live=0,1:dead=:globals=arr" ];
         t_baseline_cycles = 1000;
         t_heuristic_cycles = 900;
         t_found_cycles = 850;
         t_improved = true;
         t_explored = 17;
         t_total = 23;
         t_complete = false;
         t_cached = false;
       });
  roundtrip P.R_shutdown;
  roundtrip (P.R_error { code = P.Timeout; message = "deadline of 1ms expired" });
  roundtrip
    (P.R_stats
       {
         s_uptime_s = 1.5;
         s_requests = [ ("advise", 2); ("stats", 1) ];
         s_errors = [ ("timeout", 1) ];
         s_result_hits = 1;
         s_result_misses = 2;
         s_ir_hits = 0;
         s_ir_misses = 2;
         s_disk_hits = 1;
         s_disk_misses = 1;
         s_cache_entries = 4;
         s_cache_bytes = 123456;
         s_cache_evictions = 0;
         s_inflight = 1;
         s_queued = 2;
         s_shedding = true;
         s_conns = 3;
         s_latency =
           {
             l_count = 3;
             l_p50_ms = 1.0;
             l_p95_ms = 20.0;
             l_p99_ms = 20.0;
             l_max_ms = 24.5;
           };
       })

let codec_ids () =
  (* inject/strip are textual inverses and agree with the codec *)
  let body =
    Json.to_string ~indent:false (P.json_of_request (advise "int main(){}"))
  in
  let tagged = P.inject_id ~id:42 body in
  Alcotest.(check string) "inject matches codec"
    (Json.to_string ~indent:false (P.json_of_request ~id:42 (advise "int main(){}")))
    tagged;
  (match P.strip_id tagged with
  | Some (id, rest) ->
    Alcotest.(check int) "strip recovers the id" 42 id;
    Alcotest.(check string) "strip recovers the body" body rest
  | None -> Alcotest.fail "strip_id missed a canonical id");
  Alcotest.(check bool) "no id strips to None" true (P.strip_id body = None);
  (match P.strip_id "{\"id\":7}" with
  | Some (7, "{}") -> ()
  | _ -> Alcotest.fail "id-only object");
  Alcotest.(check bool) "identity without id" true
    (String.equal (P.inject_id body) body);
  (* non-canonical spellings must fall back to the parser, not misread *)
  Alcotest.(check bool) "spaced id is non-canonical" true
    (P.strip_id "{ \"id\": 3, \"kind\":\"stats\"}" = None);
  (match
     P.scan_reply_header
       (P.inject_id ~id:9
          (Json.to_string ~indent:false
             (P.json_of_reply (P.R_advise { a_report = "r"; a_cached = true }))))
   with
  | Some 9, Ok () -> ()
  | _ -> Alcotest.fail "scan of a success reply");
  match
    P.scan_reply_header
      (Json.to_string ~indent:false
         (P.json_of_reply (P.R_error { code = P.Overloaded; message = "m" })))
  with
  | None, Error "overloaded" -> ()
  | _ -> Alcotest.fail "scan of an error reply"

(* ---------------- end to end ---------------- *)

let e2e_advise_cached () =
  with_server (fun ~connect ~close _socket ->
      let conn = connect () in
      let src = hot_cold_src "adv" in
      (match Client.rpc conn (advise src) with
      | P.R_advise { a_report; a_cached } ->
        Alcotest.(check bool) "first advise is a miss" false a_cached;
        Alcotest.(check bool) "report mentions the struct" true
          (Astring.String.is_infix ~affix:"sadv" a_report)
      | r -> Alcotest.failf "advise failed: %s" (Json.to_string (P.json_of_reply r)));
      (match Client.rpc conn (advise src) with
      | P.R_advise { a_cached; _ } ->
        Alcotest.(check bool) "second advise is a hit" true a_cached
      | _ -> Alcotest.fail "second advise failed");
      (* same source, different scheme: a different cache key *)
      (match Client.rpc conn (advise ~scheme:"spbo" src) with
      | P.R_advise { a_cached; _ } ->
        Alcotest.(check bool) "scheme is part of the key" false a_cached
      | _ -> Alcotest.fail "spbo advise failed");
      (match Client.rpc conn P.Stats with
      | P.R_stats s ->
        Alcotest.(check int) "result hits" 1 s.s_result_hits;
        Alcotest.(check int) "result misses" 2 s.s_result_misses;
        (* the IR cache deduplicates across schemes *)
        Alcotest.(check int) "ir hits" 1 s.s_ir_hits;
        Alcotest.(check int) "ir misses" 1 s.s_ir_misses;
        Alcotest.(check bool) "advise counted" true
          (List.assoc_opt "advise" s.s_requests = Some 3);
        Alcotest.(check bool) "cache occupied" true (s.s_cache_bytes > 0)
      | _ -> Alcotest.fail "stats failed");
      close conn)

(* pool is part of the cache key and actually changes the decisions:
   the same ring advised with and without --pool yields two distinct
   cache entries, and only the pooled report mentions the pool plan *)
let e2e_advise_pool () =
  with_server (fun ~connect ~close _socket ->
      let conn = connect () in
      let src = ring_src "pl" in
      (match Client.rpc conn (advise src) with
      | P.R_advise { a_report; a_cached } ->
        Alcotest.(check bool) "plain advise is a miss" false a_cached;
        Alcotest.(check bool) "no pooling without the flag" false
          (Astring.String.is_infix ~affix:"Pooling" a_report)
      | r ->
        Alcotest.failf "plain advise failed: %s" (Json.to_string (P.json_of_reply r)));
      (match Client.rpc conn (advise ~pool:true src) with
      | P.R_advise { a_report; a_cached } ->
        Alcotest.(check bool) "pool is part of the cache key" false a_cached;
        Alcotest.(check bool) "pooled report proposes pooling" true
          (Astring.String.is_infix ~affix:"Transform: Pooling" a_report)
      | r ->
        Alcotest.failf "pool advise failed: %s" (Json.to_string (P.json_of_reply r)));
      (match Client.rpc conn (advise ~pool:true src) with
      | P.R_advise { a_cached; _ } ->
        Alcotest.(check bool) "pooled repeat is a hit" true a_cached
      | _ -> Alcotest.fail "pooled repeat failed");
      close conn)

let e2e_bench () =
  with_server (fun ~connect ~close _socket ->
      let conn = connect () in
      let src = hot_cold_src "bch" in
      (match Client.rpc conn (bench ~scheme:"spbo" src) with
      | P.R_bench b ->
        Alcotest.(check bool) "bench is a miss" false b.b_cached;
        Alcotest.(check bool) "cycles measured" true
          (b.b_cycles_before > 0 && b.b_cycles_after > 0)
      | r -> Alcotest.failf "bench failed: %s" (Json.to_string (P.json_of_reply r)));
      (match Client.rpc conn (bench ~scheme:"spbo" src) with
      | P.R_bench b -> Alcotest.(check bool) "bench repeat is a hit" true b.b_cached
      | _ -> Alcotest.fail "bench repeat failed");
      close conn)

let e2e_check () =
  with_server (fun ~connect ~close _socket ->
      let conn = connect () in
      let src =
        "struct s { long a; long b; };\n\
         struct s *p; long sink;\n\
         int main() { long *raw;\n\
         p = (struct s*)malloc(4 * sizeof(struct s));\n\
         p->a = 1; p->b = 2;\n\
         raw = (long*)p;\n\
         sink = raw[1];\n\
         return (int)(p->a + sink); }"
      in
      (match
         Client.rpc conn (P.Check { src; relax = false; deadline_ms = None })
       with
      | P.R_check c ->
        Alcotest.(check bool) "first check is a miss" false c.c_cached;
        Alcotest.(check bool) "report carries a located CSTF" true
          (Astring.String.is_infix ~affix:":6:" c.c_report
          && Astring.String.is_infix ~affix:"CSTF" c.c_report);
        Alcotest.(check bool) "sarif is 2.1.0" true
          (Astring.String.is_infix ~affix:"\"2.1.0\"" c.c_sarif);
        Alcotest.(check int) "the cast invalidates" 1 c.c_invalidating
      | r -> Alcotest.failf "check failed: %s" (Json.to_string (P.json_of_reply r)));
      (match
         Client.rpc conn (P.Check { src; relax = false; deadline_ms = None })
       with
      | P.R_check c ->
        Alcotest.(check bool) "repeat check is a hit" true c.c_cached
      | _ -> Alcotest.fail "check repeat failed");
      (* relax is part of the cache key and flips the verdict to the
         points-to collapse *)
      (match
         Client.rpc conn (P.Check { src; relax = true; deadline_ms = None })
       with
      | P.R_check c ->
        Alcotest.(check bool) "relax is a different key" false c.c_cached;
        Alcotest.(check bool) "PTS finding surfaces" true
          (Astring.String.is_infix ~affix:"PTS" c.c_report);
        Alcotest.(check int) "points-to collapse invalidates" 1
          c.c_invalidating
      | _ -> Alcotest.fail "relaxed check failed");
      close conn)

let e2e_tune () =
  with_server ~jobs:2 (fun ~connect ~close _socket ->
      let conn = connect () in
      let src = hot_cold_src "tun" in
      let tune ?beam ?deadline_ms () =
        P.Tune { src; scheme = Some "ispbo"; backend = None; args = [];
                 beam; deadline_ms }
      in
      (* a budget far too tight for any candidate: anytime semantics
         mean the best-so-far (the heuristic incumbent) comes back as a
         success reply, never a [timeout] error *)
      let tight_found_cycles =
        match Client.rpc conn (tune ~deadline_ms:0.001 ()) with
        | P.R_tune t ->
          Alcotest.(check bool) "tight budget: incomplete" false t.t_complete;
          Alcotest.(check bool) "tight budget: not cached" false t.t_cached;
          Alcotest.(check bool) "tight budget: never worse" true
            (t.t_found_cycles <= t.t_heuristic_cycles);
          Alcotest.(check bool) "tight budget: falls back to heuristic" true
            (t.t_plans = t.t_heuristic_plans);
          t.t_found_cycles
        | r ->
          Alcotest.failf "tight tune failed: %s"
            (Json.to_string (P.json_of_reply r))
      in
      (* no budget: the whole space is scored, and a longer budget can
         only match or improve on the tight run's best *)
      (match Client.rpc conn (tune ()) with
      | P.R_tune t ->
        Alcotest.(check bool) "full search completes" true t.t_complete;
        Alcotest.(check int) "explored everything" t.t_total t.t_explored;
        Alcotest.(check bool) "longer budget at least as good" true
          (t.t_found_cycles <= tight_found_cycles);
        Alcotest.(check bool) "plans are codec-parseable" true
          (List.for_all
             (fun p -> Result.is_ok (Slo_core.Codec.plan_of_string p))
             (t.t_plans @ t.t_heuristic_plans))
      | r ->
        Alcotest.failf "full tune failed: %s"
          (Json.to_string (P.json_of_reply r)));
      (* budget is part of the result identity: a repeat of the same
         request hits the cache, a different budget does not *)
      (match Client.rpc conn (tune ()) with
      | P.R_tune t -> Alcotest.(check bool) "repeat is a hit" true t.t_cached
      | _ -> Alcotest.fail "tune repeat failed");
      (match Client.rpc conn (tune ~beam:2 ()) with
      | P.R_tune t ->
        Alcotest.(check bool) "beam is part of the key" false t.t_cached
      | _ -> Alcotest.fail "beam tune failed");
      close conn)

let e2e_structured_errors () =
  with_server (fun ~connect ~close _socket ->
      let conn = connect () in
      expect_error "parse" P.Parse_error
        (Client.rpc conn (advise "struct s {"));
      expect_error "type" P.Type_error
        (Client.rpc conn (advise "int main() { return undefined_var; }"));
      expect_error "unknown scheme" P.Bad_request
        (Client.rpc conn (advise ~scheme:"nope" "int main() { return 0; }"));
      (* the connection survives every one of those *)
      (match Client.rpc conn P.Stats with
      | P.R_stats s ->
        Alcotest.(check bool) "parse_error counted" true
          (List.assoc_opt "parse_error" s.s_errors = Some 1);
        Alcotest.(check bool) "type_error counted" true
          (List.assoc_opt "type_error" s.s_errors = Some 1);
        Alcotest.(check bool) "bad_request counted" true
          (List.assoc_opt "bad_request" s.s_errors = Some 1)
      | _ -> Alcotest.fail "stats failed");
      close conn)

let e2e_deadline () =
  with_server ~jobs:2 (fun ~connect ~close _socket ->
      let conn = connect () in
      expect_error "deadline" P.Timeout
        (Client.rpc conn (bench ~deadline_ms:1.0 (slow_src "dl")));
      (* the daemon still serves other requests while the timed-out job
         keeps a worker busy *)
      (match Client.rpc conn (advise (hot_cold_src "dl2")) with
      | P.R_advise _ -> ()
      | _ -> Alcotest.fail "request after timeout failed");
      close conn)

let e2e_overloaded () =
  with_server ~max_conns:2 (fun ~connect ~close _socket ->
      let c1 = connect () in
      let c2 = connect () in
      (* a round-trip on both guarantees the server has registered them
         before the third connect races the accept loop *)
      (match (Client.rpc c1 P.Stats, Client.rpc c2 P.Stats) with
      | P.R_stats s, P.R_stats _ ->
        Alcotest.(check int) "two connections open" 2 s.P.s_conns
      | _ -> Alcotest.fail "stats failed");
      let c3 = connect () in
      (match Client.rpc c3 P.Stats with
      | reply -> expect_error "third connection" P.Overloaded reply
      | exception Client.Protocol_error _ ->
        (* the refusal frame may already be followed by a close; a torn
           read is acceptable, a served request is not *)
        ());
      close c3;
      (* closing one admitted connection frees a slot — once the server
         notices the EOF and deregisters it, which is asynchronous *)
      close c1;
      let rec await_slot attempts =
        if attempts = 0 then Alcotest.fail "closed connection never freed";
        match Client.rpc c2 P.Stats with
        | P.R_stats s when s.P.s_conns <= 1 -> ()
        | P.R_stats _ ->
          Unix.sleepf 0.02;
          await_slot (attempts - 1)
        | _ -> Alcotest.fail "stats failed"
      in
      await_slot 250;
      let c4 = connect () in
      (match Client.rpc c4 P.Stats with
      | P.R_stats _ -> ()
      | reply ->
        Alcotest.failf "slot not freed: %s" (Json.to_string (P.json_of_reply reply)));
      close c4;
      close c2)

let e2e_shutdown_drains () =
  let socket_path = fresh_socket () in
  let cfg =
    { (Server.default_config ~socket_path) with jobs = 1; handle_sigterm = false }
  in
  let th = Thread.create Server.run cfg in
  let conn = Client.connect_socket ~retry_for_s:10.0 ~socket:socket_path () in
  (match Client.rpc conn (advise (hot_cold_src "sd")) with
  | P.R_advise _ -> ()
  | _ -> Alcotest.fail "advise before shutdown failed");
  (match Client.rpc conn P.Shutdown with
  | P.R_shutdown -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  Thread.join th;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket_path);
  (* new connections are refused once drained *)
  (match Client.connect_socket ~retry_for_s:0.0 ~socket:socket_path () with
  | conn2 -> Client.close conn2; Alcotest.fail "connect after drain succeeded"
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) -> ());
  Client.close conn

let e2e_sigterm_drains () =
  (* handle_sigterm = true: the daemon installs its drain handler, and a
     SIGTERM mid-request must not kill the in-flight reply *)
  let socket_path = fresh_socket () in
  let cfg =
    { (Server.default_config ~socket_path) with jobs = 1; handle_sigterm = true }
  in
  let th = Thread.create Server.run cfg in
  let conn = Client.connect_socket ~retry_for_s:10.0 ~socket:socket_path () in
  let reply = ref None in
  let client =
    Thread.create
      (fun () -> reply := Some (Client.rpc conn (advise (hot_cold_src "st"))))
      ()
  in
  Unix.sleepf 0.05;
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Thread.join client;
  Thread.join th;
  (match !reply with
  | Some (P.R_advise _) -> ()
  | Some r ->
    Alcotest.failf "in-flight request killed by SIGTERM: %s"
      (Json.to_string (P.json_of_reply r))
  | None -> Alcotest.fail "no reply recorded");
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket_path);
  Client.close conn

(* a loopback port that is free right now; the bind-close-reuse window
   is ours alone in a test process *)
let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let e2e_tcp_transport () =
  let port = free_port () in
  with_server ~listen:("127.0.0.1", port) (fun ~connect ~close _socket ->
      let tcp =
        Client.connect ~retry_for_s:10.0 ~endpoint:(`Tcp ("127.0.0.1", port)) ()
      in
      let src = hot_cold_src "tcp" in
      (match Client.rpc tcp (advise src) with
      | P.R_advise { a_cached; _ } ->
        Alcotest.(check bool) "miss over TCP" false a_cached
      | r ->
        Alcotest.failf "TCP advise failed: %s" (Json.to_string (P.json_of_reply r)));
      (* both transports front one cache *)
      let unix_conn = connect () in
      (match Client.rpc unix_conn (advise src) with
      | P.R_advise { a_cached; _ } ->
        Alcotest.(check bool) "hit via the Unix socket" true a_cached
      | _ -> Alcotest.fail "unix advise failed");
      close unix_conn;
      Client.close tcp)

let e2e_pipelining_out_of_order () =
  (* one worker: a slow bench miss occupies it while a cached advise,
     sent later on the same connection, overtakes it *)
  with_server ~jobs:1 (fun ~connect ~close _socket ->
      let conn = connect () in
      let adv = advise (hot_cold_src "pipe") in
      (match Client.rpc conn adv with
      | P.R_advise _ -> ()
      | _ -> Alcotest.fail "advise warmup failed");
      Client.send conn ~id:1 (bench ~scheme:"spbo" (slow_src "pipe"));
      Client.send conn ~id:2 adv;
      Client.send conn ~id:3 adv;
      let id1, r1 = Client.recv conn in
      let id2, r2 = Client.recv conn in
      let id3, r3 = Client.recv conn in
      Alcotest.(check (list (option int)))
        "cached advises overtake the bench"
        [ Some 2; Some 3; Some 1 ] [ id1; id2; id3 ];
      (match (r1, r2) with
      | P.R_advise { a_cached = true; _ }, P.R_advise { a_cached = true; _ } -> ()
      | _ -> Alcotest.fail "overtaking replies were not the cached advises");
      (match r3 with
      | P.R_bench _ -> ()
      | r ->
        Alcotest.failf "bench reply: %s" (Json.to_string (P.json_of_reply r)));
      close conn)

let e2e_disk_cache_warm_restart () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "slo-diskcache-%d" (Unix.getpid ()))
  in
  let src = hot_cold_src "disk" in
  with_server ~cache_dir:dir (fun ~connect ~close _socket ->
      let conn = connect () in
      (match Client.rpc conn (advise src) with
      | P.R_advise { a_cached; _ } ->
        Alcotest.(check bool) "cold daemon misses" false a_cached
      | r ->
        Alcotest.failf "advise failed: %s" (Json.to_string (P.json_of_reply r)));
      close conn);
  (* a fresh daemon on the same directory: first repeat must be served
     from the persistent layer, not recomputed *)
  with_server ~cache_dir:dir (fun ~connect ~close _socket ->
      let conn = connect () in
      (match Client.rpc conn (advise src) with
      | P.R_advise { a_cached; _ } ->
        Alcotest.(check bool) "restarted daemon serves from disk" true a_cached
      | r ->
        Alcotest.failf "advise failed: %s" (Json.to_string (P.json_of_reply r)));
      (match Client.rpc conn P.Stats with
      | P.R_stats s ->
        Alcotest.(check int) "one disk hit" 1 s.s_disk_hits;
        Alcotest.(check int) "no recompute" 1 s.s_result_misses
      | _ -> Alcotest.fail "stats failed");
      close conn);
  (* best-effort cleanup; verify-on-load makes leftovers harmless *)
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let e2e_overload_sheds_bench () =
  (* watermarks 1/0 with one worker: a single queued job flips the
     daemon into shedding; bench misses get structured overloaded
     replies while cached advise keeps being served *)
  with_server ~jobs:1 ~high_watermark:1 (fun ~connect ~close _socket ->
      let conn = connect () in
      let adv = advise (hot_cold_src "shed") in
      (match Client.rpc conn adv with
      | P.R_advise _ -> ()
      | _ -> Alcotest.fail "advise warmup failed");
      Client.send conn ~id:1 (bench ~scheme:"spbo" (slow_src "shed"));
      (* wait until the job is queued (= shedding is on) before probing *)
      let probe = connect () in
      let rec await_queued attempts =
        if attempts = 0 then Alcotest.fail "bench was never queued";
        match Client.rpc probe P.Stats with
        | P.R_stats s when s.s_shedding -> ()
        | P.R_stats _ ->
          Unix.sleepf 0.01;
          await_queued (attempts - 1)
        | _ -> Alcotest.fail "stats failed"
      in
      await_queued 500;
      expect_error "bench miss under overload" P.Overloaded
        (Client.rpc probe (bench ~scheme:"spbo" (hot_cold_src "shed2")));
      (match Client.rpc probe adv with
      | P.R_advise { a_cached; _ } ->
        Alcotest.(check bool) "cached advise still served" true a_cached
      | _ -> Alcotest.fail "cached advise was shed");
      (* the backlog drains: the slow bench completes and shedding ends *)
      (match Client.recv conn with
      | Some 1, P.R_bench _ -> ()
      | _ -> Alcotest.fail "queued bench did not complete");
      let rec await_admitting attempts =
        if attempts = 0 then Alcotest.fail "shedding never ended";
        match Client.rpc probe P.Stats with
        | P.R_stats s when not s.s_shedding -> ()
        | P.R_stats _ ->
          Unix.sleepf 0.01;
          await_admitting (attempts - 1)
        | _ -> Alcotest.fail "stats failed"
      in
      await_admitting 500;
      (match Client.rpc probe (bench ~scheme:"spbo" (hot_cold_src "shed2")) with
      | P.R_bench _ -> ()
      | r ->
        Alcotest.failf "bench after drain: %s" (Json.to_string (P.json_of_reply r)));
      close probe;
      close conn)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "framing roundtrip" `Quick framing_roundtrip;
          Alcotest.test_case "framing errors" `Quick framing_errors;
          Alcotest.test_case "error codes" `Quick codec_error_codes;
          Alcotest.test_case "request codec" `Quick codec_requests;
          Alcotest.test_case "reply codec" `Quick codec_replies;
          Alcotest.test_case "id plumbing" `Quick codec_ids;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "advise + cache" `Quick e2e_advise_cached;
          Alcotest.test_case "advise with pooling" `Quick e2e_advise_pool;
          Alcotest.test_case "bench + cache" `Quick e2e_bench;
          Alcotest.test_case "check + cache" `Quick e2e_check;
          Alcotest.test_case "tune anytime + cache" `Quick e2e_tune;
          Alcotest.test_case "structured errors" `Quick e2e_structured_errors;
          Alcotest.test_case "deadline" `Quick e2e_deadline;
          Alcotest.test_case "connection limit" `Quick e2e_overloaded;
          Alcotest.test_case "shutdown drains" `Quick e2e_shutdown_drains;
          Alcotest.test_case "sigterm drains" `Quick e2e_sigterm_drains;
          Alcotest.test_case "tcp transport" `Quick e2e_tcp_transport;
          Alcotest.test_case "pipelining out of order" `Quick
            e2e_pipelining_out_of_order;
          Alcotest.test_case "disk cache warm restart" `Quick
            e2e_disk_cache_warm_restart;
          Alcotest.test_case "overload sheds bench" `Quick
            e2e_overload_sheds_bench;
        ] );
    ]
