(* Cache simulator: single level, hierarchy, PMU sampling. *)

module Cache = Slo_cachesim.Cache
module Hierarchy = Slo_cachesim.Hierarchy
module Pmu = Slo_cachesim.Pmu

let mk ?(size = 1024) ?(line = 64) ?(assoc = 2) () =
  Cache.create ~name:"t" ~size ~line ~assoc

let basic_hit_miss () =
  let c = mk () in
  Alcotest.(check bool) "cold miss" false (Cache.access c ~addr:0 ~write:false);
  Alcotest.(check bool) "hit same line" true
    (Cache.access c ~addr:63 ~write:false);
  Alcotest.(check bool) "miss next line" false
    (Cache.access c ~addr:64 ~write:true);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let lru_eviction () =
  (* 1024/64/2 => 8 sets; addresses k*512 all map to set 0 *)
  let c = mk () in
  let a0 = 0 and a1 = 512 and a2 = 1024 in
  ignore (Cache.access c ~addr:a0 ~write:false);
  ignore (Cache.access c ~addr:a1 ~write:false);
  ignore (Cache.access c ~addr:a0 ~write:false);
  (* a1 is now LRU; a2 evicts it *)
  ignore (Cache.access c ~addr:a2 ~write:false);
  Alcotest.(check bool) "a0 still resident" true
    (Cache.access c ~addr:a0 ~write:false);
  Alcotest.(check bool) "a1 evicted" false
    (Cache.access c ~addr:a1 ~write:false)

let clear_and_stats () =
  let c = mk () in
  ignore (Cache.access c ~addr:0 ~write:false);
  Cache.clear c;
  Alcotest.(check int) "stats cleared" 0 (Cache.misses c);
  Alcotest.(check bool) "lines invalidated" false
    (Cache.access c ~addr:0 ~write:false)

let bad_config () =
  Alcotest.(check bool) "bad line" true
    (match Cache.create ~name:"x" ~size:100 ~line:48 ~assoc:2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_working_set =
  QCheck.Test.make ~count:100
    ~name:"working set <= capacity never misses after warmup"
    QCheck.(make Gen.(int_range 1 16))
    (fun nlines ->
      let c = Cache.create ~name:"t" ~size:(16 * 64) ~line:64 ~assoc:16 in
      let addrs = List.init nlines (fun i -> i * 64) in
      List.iter (fun a -> ignore (Cache.access c ~addr:a ~write:false)) addrs;
      Cache.reset_stats c;
      List.iter (fun a -> ignore (Cache.access c ~addr:a ~write:false)) addrs;
      Cache.misses c = 0)

let prop_miss_bound =
  QCheck.Test.make ~count:100 ~name:"misses <= accesses"
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 100_000))
    (fun addrs ->
      let c = mk () in
      List.iter (fun a -> ignore (Cache.access c ~addr:a ~write:false)) addrs;
      Cache.misses c + Cache.hits c = List.length addrs
      && Cache.misses c <= List.length addrs)

(* A transparent reference model of a set-associative LRU cache, using
   the plain division/modulo set-index arithmetic the production code
   replaced with shift/mask fast paths: per-access results and final
   hit/miss totals must match exactly, on power-of-two and (L2-Itanium-
   style) non-power-of-two set counts alike. *)
module Ref_model = struct
  type t = {
    line : int;
    nsets : int;
    assoc : int;
    sets : (int * int) array array;  (* (tag, stamp); tag -1 = invalid *)
    mutable tick : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create ~size ~line ~assoc =
    let nsets = size / (line * assoc) in
    { line; nsets; assoc;
      sets = Array.init nsets (fun _ -> Array.make assoc (-1, 0));
      tick = 0; hits = 0; misses = 0 }

  let access t ~addr =
    let line_no = addr / t.line in
    let set = t.sets.(line_no mod t.nsets) in
    let tag = line_no / t.nsets in
    t.tick <- t.tick + 1;
    let way = ref (-1) in
    Array.iteri (fun w (tg, _) -> if tg = tag then way := w) set;
    if !way >= 0 then begin
      set.(!way) <- (tag, t.tick);
      t.hits <- t.hits + 1;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      let victim = ref 0 in
      for w = 1 to t.assoc - 1 do
        if snd set.(w) < snd set.(!victim) then victim := w
      done;
      set.(!victim) <- (tag, t.tick);
      false
    end
end

(* random geometries: line always a power of two, set count sometimes
   not (e.g. 6144-set Itanium L2 shape scaled down: 3 sets here) *)
let gen_geometry =
  QCheck.Gen.(
    oneofl [ 16; 32; 64; 128 ] >>= fun line ->
    oneofl [ 1; 2; 3; 4; 8 ] >>= fun assoc ->
    oneofl [ 2; 3; 4; 6; 8; 16 ] >>= fun nsets ->
    return (line, assoc, nsets))

let prop_matches_reference_model =
  QCheck.Test.make ~count:200
    ~name:"shift/mask access matches div/mod reference model"
    QCheck.(
      pair
        (make gen_geometry
           ~print:(fun (l, a, s) -> Printf.sprintf "line=%d assoc=%d nsets=%d" l a s))
        (list_of_size (Gen.int_range 1 300) (int_range 0 1_000_000)))
    (fun ((line, assoc, nsets), addrs) ->
      let size = line * assoc * nsets in
      let c = Cache.create ~name:"t" ~size ~line ~assoc in
      let r = Ref_model.create ~size ~line ~assoc in
      List.for_all
        (fun addr ->
          Cache.access c ~addr ~write:false = Ref_model.access r ~addr)
        addrs
      && Cache.hits c = r.Ref_model.hits
      && Cache.misses c = r.Ref_model.misses)

(* ------------------------- hierarchy ------------------------- *)

let hierarchy_levels () =
  let h = Hierarchy.create Hierarchy.small in
  let lat1, lvl1 = Hierarchy.access h ~addr:4096 ~size:8 ~write:false ~is_float:false in
  Alcotest.(check bool) "cold goes to memory" true (lvl1 = Hierarchy.Mem);
  Alcotest.(check int) "mem latency" Hierarchy.small.mem_lat lat1;
  let lat2, lvl2 = Hierarchy.access h ~addr:4096 ~size:8 ~write:false ~is_float:false in
  Alcotest.(check bool) "then L1 hit" true (lvl2 = Hierarchy.L1);
  Alcotest.(check int) "l1 latency" Hierarchy.small.l1_lat lat2

let fp_bypass () =
  let h = Hierarchy.create Hierarchy.small in
  ignore (Hierarchy.access h ~addr:8192 ~size:8 ~write:false ~is_float:true);
  let _, lvl = Hierarchy.access h ~addr:8192 ~size:8 ~write:false ~is_float:true in
  Alcotest.(check bool) "FP served by L2, never L1" true (lvl = Hierarchy.L2);
  (* the same line via an integer access misses L1 (floats bypassed it) *)
  let _, lvl_int =
    Hierarchy.access h ~addr:8192 ~size:8 ~write:false ~is_float:false
  in
  Alcotest.(check bool) "int access misses L1" true (lvl_int <> Hierarchy.L1)

let straddling_access () =
  let h = Hierarchy.create Hierarchy.small in
  (* 8 bytes across a 64B boundary touches two L1 lines *)
  ignore (Hierarchy.access h ~addr:(4096 + 60) ~size:8 ~write:false ~is_float:false);
  ignore (Hierarchy.access h ~addr:4096 ~size:1 ~write:false ~is_float:false);
  ignore (Hierarchy.access h ~addr:(4096 + 64) ~size:1 ~write:false ~is_float:false);
  let _, l1 = Hierarchy.access h ~addr:4096 ~size:1 ~write:false ~is_float:false in
  let _, l2 = Hierarchy.access h ~addr:(4096 + 64) ~size:1 ~write:false ~is_float:false in
  Alcotest.(check bool) "both lines resident" true
    (l1 = Hierarchy.L1 && l2 = Hierarchy.L1)

(* A straddling access that partially hits in L1 must descend only the
   L1-missing lines to L2: the L1-hitting lines are served by L1 and may
   neither inflate L2 traffic nor perturb L2 LRU state.

   Geometry of [small]: 64 B L1 lines, 128 B L2 lines. The access at
   [4216, 4232) covers L1 lines 4160 (resident below) and 4224 (cold),
   which fall into two *different* L2 lines (4096..4223 and 4224..4351),
   so an L2 touch of the hitting line would be visible as an L2 hit. *)
let partial_hit_descends_only_misses () =
  let h = Hierarchy.create Hierarchy.small in
  (* warm L1 line [4160,4223]: L1 miss, descends to L2 (miss), memory *)
  let _, lvl0 = Hierarchy.access h ~addr:4160 ~size:8 ~write:false ~is_float:false in
  Alcotest.(check bool) "cold warmup from memory" true (lvl0 = Hierarchy.Mem);
  Alcotest.(check int) "warmup: 1 L1 miss" 1 (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "warmup: 1 L2 miss" 1 (Cache.misses (Hierarchy.l2 h));
  (* straddle [4216,4232): L1 line 4160 hits, L1 line 4224 misses; only
     the missing line may reach L2 *)
  let _, lvl = Hierarchy.access h ~addr:4216 ~size:16 ~write:false ~is_float:false in
  Alcotest.(check bool) "missing line came from memory" true (lvl = Hierarchy.Mem);
  Alcotest.(check int) "L1: one hit (line 4160)" 1 (Cache.hits (Hierarchy.l1 h));
  Alcotest.(check int) "L1: two misses total" 2 (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "L2: hitting L1 line never touched L2" 0
    (Cache.hits (Hierarchy.l2 h));
  Alcotest.(check int) "L2: exactly the missing line descended" 2
    (Cache.misses (Hierarchy.l2 h));
  (* both lines now resident: the same access is a pure L1 hit *)
  let _, lvl2 = Hierarchy.access h ~addr:4216 ~size:16 ~write:false ~is_float:false in
  Alcotest.(check bool) "now an L1 hit" true (lvl2 = Hierarchy.L1);
  Alcotest.(check int) "no further L2 traffic" 2 (Cache.misses (Hierarchy.l2 h));
  Alcotest.(check int) "no L2 hits either" 0 (Cache.hits (Hierarchy.l2 h))

(* Two missing L1 lines inside the same 128 B L2 line are two separate
   L2 requests (each L1 fill is its own lookup): the first misses, the
   second hits. *)
let per_line_fills_share_l2_line () =
  let h = Hierarchy.create Hierarchy.small in
  (* [4096,4224) covers L1 lines 4096 and 4160, both cold, both inside
     the single L2 line [4096,4223] *)
  let _, lvl = Hierarchy.access h ~addr:4096 ~size:128 ~write:false ~is_float:false in
  Alcotest.(check bool) "served by memory" true (lvl = Hierarchy.Mem);
  Alcotest.(check int) "two L1 misses" 2 (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "first fill misses L2" 1 (Cache.misses (Hierarchy.l2 h));
  Alcotest.(check int) "second fill hits the just-filled L2 line" 1
    (Cache.hits (Hierarchy.l2 h));
  (* an all-hit straddling access is served entirely by L1 *)
  let _, lvl2 = Hierarchy.access h ~addr:4100 ~size:120 ~write:false ~is_float:false in
  Alcotest.(check bool) "straddling re-access is L1" true (lvl2 = Hierarchy.L1);
  Alcotest.(check int) "and adds no L2 traffic" 2
    (Cache.misses (Hierarchy.l2 h) + Cache.hits (Hierarchy.l2 h))

(* FP accesses bypass L1: L2 is their first level, and a straddling FP
   access touches every covered L2 line there *)
let fp_straddle_touches_l2_range () =
  let h = Hierarchy.create Hierarchy.small in
  let _, lvl = Hierarchy.access h ~addr:4216 ~size:16 ~write:false ~is_float:true in
  Alcotest.(check bool) "cold FP from memory" true (lvl = Hierarchy.Mem);
  Alcotest.(check int) "both L2 lines touched" 2 (Cache.misses (Hierarchy.l2 h));
  Alcotest.(check int) "L1 untouched by FP" 0
    (Cache.misses (Hierarchy.l1 h) + Cache.hits (Hierarchy.l1 h));
  let _, lvl2 = Hierarchy.access h ~addr:4216 ~size:16 ~write:false ~is_float:true in
  Alcotest.(check bool) "warm FP served by L2" true (lvl2 = Hierarchy.L2)

(* ------------------- skip correction sketch ------------------- *)

(* [Cache.correct_skip] evicts per-set LRU lines in favour of synthetic
   never-hit tags, at the per-set insertion rate the sketch recorded. *)
let correct_skip_evicts_lru () =
  (* one set, two ways *)
  let c = Cache.create ~name:"t" ~size:128 ~line:64 ~assoc:2 in
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:64 ~write:false);
  ignore (Cache.access c ~addr:0 ~write:false);
  (* ins = 2 over 3 accesses; extrapolating 1 skipped access at that
     rate with observed = 2 inserts 2*1/2 = 1 synthetic line, evicting
     the LRU way (line 64) and leaving the MRU way (line 0) alone *)
  Cache.correct_skip c ~skipped:1 ~observed:2;
  Alcotest.(check bool) "MRU line survives" true
    (Cache.access c ~addr:0 ~write:false);
  Alcotest.(check bool) "LRU line evicted by a synthetic" false
    (Cache.access c ~addr:64 ~write:false)

let correct_skip_caps_and_carries () =
  let c = Cache.create ~name:"t" ~size:128 ~line:64 ~assoc:2 in
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:64 ~write:false);
  (* rate 2 insertions / 2 accesses over 100 skipped = 100 synthetic
     fills, capped at the associativity: everything evicted, no crash *)
  Cache.correct_skip c ~skipped:100 ~observed:2;
  Alcotest.(check bool) "all ways synthetic" false
    (Cache.access c ~addr:0 ~write:false);
  Alcotest.(check bool) "all ways synthetic (other line)" false
    (Cache.access c ~addr:64 ~write:false);
  (* remainders carry: 1 insertion / 2 observed over 1 skipped is half
     a line — rounded down to nothing, remainder carried. After the
     sketch refills, the second correction's half line plus the carry
     completes one eviction (without the carry it would again round to
     zero) *)
  let d = Cache.create ~name:"t" ~size:128 ~line:64 ~assoc:2 in
  ignore (Cache.access d ~addr:0 ~write:false);
  Cache.correct_skip d ~skipped:1 ~observed:2;
  Alcotest.(check bool) "half a line rounds down" true
    (Cache.access d ~addr:0 ~write:false);
  ignore (Cache.access d ~addr:64 ~write:false);
  (* line 0 is now LRU; ins = 1 again *)
  ignore (Cache.access d ~addr:64 ~write:false);
  Cache.correct_skip d ~skipped:1 ~observed:2;
  Alcotest.(check bool) "carry completes the eviction" false
    (Cache.access d ~addr:0 ~write:false)

(* ------------------- ring & batched draining ------------------- *)

module Ring = Slo_cachesim.Ring

let ring_meta_roundtrip () =
  List.iter
    (fun (size, write, is_float, iid) ->
      let m = Ring.meta ~size ~write ~is_float ~iid in
      Alcotest.(check int) "size" size (Ring.meta_size m);
      Alcotest.(check bool) "write" write (Ring.meta_write m);
      Alcotest.(check bool) "float" is_float (Ring.meta_float m);
      Alcotest.(check int) "iid" iid (Ring.meta_iid m))
    [ (1, false, false, 0); (8, true, true, 123456); (4, true, false, -1);
      (2, false, true, -7); (8, false, false, max_int lsr 7) ]

let ring_flushes_when_full () =
  let rg = Ring.create ~cap:4 () in
  let batches = ref [] in
  Ring.set_sink rg (fun r ->
      batches := Array.sub r.Ring.addrs 0 r.Ring.len :: !batches);
  for a = 1 to 10 do
    Ring.push rg a (Ring.meta ~size:1 ~write:false ~is_float:false ~iid:0)
  done;
  Ring.flush rg;
  Alcotest.(check int) "tail drained" 0 (Ring.length rg);
  Ring.flush rg;
  Alcotest.(check int) "empty flush is a no-op" 0 (Ring.length rg);
  let seen = List.concat_map Array.to_list (List.rev !batches) in
  Alcotest.(check (list int)) "no event lost or reordered"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] seen

(* The tentpole equivalence: draining ring batches through
   [Hierarchy.drain_quiet] must leave counters AND full cache state
   (tags, LRU stamps, tick, sketch) byte-equal to feeding every event
   through [Hierarchy.access_quiet], on random geometries (power-of-two
   and odd set counts, specialized and generic probe kernels, FP bypass
   on and off), random event streams and random batch boundaries. *)
let cache_state_eq (a : Cache.t) (b : Cache.t) =
  a.Cache.tags = b.Cache.tags
  && a.Cache.stamps = b.Cache.stamps
  && a.Cache.tick = b.Cache.tick
  && a.Cache.hits = b.Cache.hits
  && a.Cache.misses = b.Cache.misses
  && a.Cache.ins = b.Cache.ins
  && a.Cache.carry = b.Cache.carry
  && a.Cache.synth_tag = b.Cache.synth_tag

let hier_state_eq a b =
  cache_state_eq (Hierarchy.l1 a) (Hierarchy.l1 b)
  && cache_state_eq (Hierarchy.l2 a) (Hierarchy.l2 b)
  && Hierarchy.accesses a = Hierarchy.accesses b
  && Hierarchy.level_counts a = Hierarchy.level_counts b
  && Hierarchy.extra_cycles a = Hierarchy.extra_cycles b

(* geometries with power-of-two and odd set counts at both levels,
   associativities with (1,2,4,8) and without (3) a specialized kernel,
   and the degenerate l2_line < l1_line shape the descent range loop
   handles *)
let gen_hier_config =
  QCheck.Gen.(
    oneofl [ 16; 32; 64 ] >>= fun l1_line ->
    oneofl [ 1; 2; 3; 4; 8 ] >>= fun l1_assoc ->
    oneofl [ 2; 3; 4; 8 ] >>= fun l1_sets ->
    oneofl [ 32; 64; 128 ] >>= fun l2_line ->
    oneofl [ 2; 3; 4 ] >>= fun l2_assoc ->
    oneofl [ 4; 6; 8; 16 ] >>= fun l2_sets ->
    bool >>= fun fpb ->
    return
      {
        Hierarchy.l1_size = l1_line * l1_assoc * l1_sets;
        l1_line;
        l1_assoc;
        l2_size = l2_line * l2_assoc * l2_sets;
        l2_line;
        l2_assoc;
        l1_lat = 1;
        l2_lat = 5;
        mem_lat = 50;
        fp_bypass_l1 = fpb;
      })

let print_hier_config (c : Hierarchy.config) =
  Printf.sprintf "L1 %d/%d/%d, L2 %d/%d/%d, fpb=%b" c.Hierarchy.l1_size
    c.l1_line c.l1_assoc c.l2_size c.l2_line c.l2_assoc c.fp_bypass_l1

(* a small address pool makes same-line repeats (the memo fast path)
   frequent; sizes up to 8 near line boundaries exercise straddles *)
let gen_events =
  QCheck.Gen.(
    list_size (int_range 1 400)
      (int_range 0 1023 >>= fun addr ->
       int_range 1 8 >>= fun size ->
       bool >>= fun write ->
       bool >>= fun is_float ->
       return (addr, size, write, is_float)))

let print_events evs =
  String.concat ";"
    (List.map
       (fun (a, s, w, f) -> Printf.sprintf "(%d,%d,%b,%b)" a s w f)
       evs)

let prop_drain_matches_per_access =
  QCheck.Test.make ~count:200
    ~name:"ring drain byte-equal to per-access (both kernels)"
    QCheck.(
      triple
        (make gen_hier_config ~print:print_hier_config)
        (make gen_events ~print:print_events)
        (int_range 1 17))
    (fun (cfg, events, chunk0) ->
      let per = Hierarchy.create cfg in
      let dra = Hierarchy.create cfg in
      let dgn = Hierarchy.create ~kernel:`Generic cfg in
      List.iter
        (fun (addr, size, write, is_float) ->
          Hierarchy.access_quiet per ~addr ~size ~write ~is_float)
        events;
      let n = List.length events in
      let addrs = Array.make n 0 and metas = Array.make n 0 in
      List.iteri
        (fun i (addr, size, write, is_float) ->
          addrs.(i) <- addr;
          metas.(i) <- Ring.meta ~size ~write ~is_float ~iid:i)
        events;
      (* varying batch boundaries: the memo must survive (or be
         invalidated) identically across flush points *)
      let feed h =
        let lo = ref 0 and k = ref 0 in
        while !lo < n do
          let c = min (n - !lo) (1 + ((chunk0 + !k) mod 17)) in
          Hierarchy.drain_quiet h addrs metas !lo (!lo + c);
          lo := !lo + c;
          incr k
        done
      in
      feed dra;
      feed dgn;
      (* the generic-kernel drain pins specialized ≡ generic too *)
      hier_state_eq per dra && hier_state_eq per dgn)

module Drainer = Slo_cachesim.Drainer

(* the worker-domain drainer: same events through a small ring with
   buffer handoff (many swaps, back-pressure) must leave the hierarchy
   byte-equal to one serial drain call *)
let drainer_matches_serial () =
  let cfg = Hierarchy.small in
  let serial = Hierarchy.create cfg in
  let piped = Hierarchy.create cfg in
  let n = 5000 in
  let addrs = Array.make n 0 and metas = Array.make n 0 in
  let seed = ref 123456789 in
  let rand m =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod m
  in
  for i = 0 to n - 1 do
    addrs.(i) <- rand 4096;
    metas.(i) <-
      Ring.meta ~size:(1 + rand 8) ~write:(rand 2 = 0) ~is_float:(rand 2 = 0)
        ~iid:i
  done;
  Hierarchy.drain_quiet serial addrs metas 0 n;
  let rg = Ring.create ~cap:64 () in
  let d =
    Drainer.create
      ~drain:(fun a m len -> Hierarchy.drain_quiet piped a m 0 len)
      ()
  in
  Ring.set_sink rg (Drainer.sink d);
  for i = 0 to n - 1 do
    Ring.push rg addrs.(i) metas.(i)
  done;
  Ring.flush rg;
  Drainer.join d;
  Alcotest.(check bool) "pipelined drain byte-equal to serial" true
    (hier_state_eq serial piped)

(* join re-raises the first drain failure and never deadlocks the
   producer even when every batch fails *)
let drainer_join_reraises () =
  let d =
    Drainer.create ~depth:1 ~drain:(fun _ _ _ -> failwith "drain boom") ()
  in
  let rg = Ring.create ~cap:8 () in
  Ring.set_sink rg (Drainer.sink d);
  for i = 0 to 99 do
    Ring.push rg i (Ring.meta ~size:1 ~write:false ~is_float:false ~iid:i)
  done;
  Ring.flush rg;
  Alcotest.check_raises "first failure surfaces at join"
    (Failure "drain boom") (fun () -> Drainer.join d)

let extra_cycles_accumulate () =
  let h = Hierarchy.create Hierarchy.small in
  ignore (Hierarchy.access h ~addr:0x10000 ~size:4 ~write:false ~is_float:false);
  Alcotest.(check int) "mem beyond base"
    (Hierarchy.small.mem_lat - Hierarchy.small.l1_lat)
    (Hierarchy.extra_cycles h);
  ignore (Hierarchy.access h ~addr:0x10000 ~size:4 ~write:false ~is_float:false);
  Alcotest.(check int) "L1 hit adds nothing"
    (Hierarchy.small.mem_lat - Hierarchy.small.l1_lat)
    (Hierarchy.extra_cycles h)

(* ------------------------- PMU ------------------------- *)

let pmu_counts_first_level_misses () =
  let p = Pmu.create ~period:1 () in
  Pmu.record p ~iid:1 ~level:Hierarchy.L1 ~latency:1 ~is_float:false;
  Pmu.record p ~iid:1 ~level:Hierarchy.L2 ~latency:11 ~is_float:false;
  Pmu.record p ~iid:1 ~level:Hierarchy.L2 ~latency:11 ~is_float:true;
  (* an FP access served by L2 is NOT a first-level miss on Itanium *)
  Pmu.record p ~iid:2 ~level:Hierarchy.Mem ~latency:200 ~is_float:true;
  Alcotest.(check int) "events" 2 (Pmu.events_seen p);
  Alcotest.(check int) "iid1 misses" 1 (Pmu.stats_of p 1).miss_events;
  Alcotest.(check int) "iid2 latency" 200 (Pmu.stats_of p 2).total_latency

let pmu_sampling_period () =
  let p = Pmu.create ~period:10 () in
  for _ = 1 to 100 do
    Pmu.record p ~iid:7 ~level:Hierarchy.Mem ~latency:200 ~is_float:false
  done;
  Alcotest.(check int) "every 10th sampled" 10 (Pmu.stats_of p 7).miss_events;
  Alcotest.(check int) "all events counted" 100 (Pmu.events_seen p)

(* regression: a negative phase used to leave the internal countdown
   negative (OCaml [mod] keeps the dividend's sign), so the counter
   never reached the period and no event was ever sampled *)
let pmu_negative_phase () =
  let p = Pmu.create ~period:10 ~phase:(-3) () in
  for _ = 1 to 100 do
    Pmu.record p ~iid:5 ~level:Hierarchy.Mem ~latency:200 ~is_float:false
  done;
  let m = (Pmu.stats_of p 5).miss_events in
  Alcotest.(check bool) "negative phase still samples" true (m >= 9 && m <= 11);
  Alcotest.(check int) "all events counted" 100 (Pmu.events_seen p);
  (* phase -3 and phase period-3 are the same offset *)
  let q = Pmu.create ~period:10 ~phase:7 () in
  for _ = 1 to 100 do
    Pmu.record q ~iid:5 ~level:Hierarchy.Mem ~latency:200 ~is_float:false
  done;
  Alcotest.(check int) "equivalent to phase mod period" m
    (Pmu.stats_of q 5).miss_events

let pmu_oversized_phase () =
  (* a phase >= period must behave exactly like phase mod period *)
  let a = Pmu.create ~period:10 ~phase:23 () in
  let b = Pmu.create ~period:10 ~phase:3 () in
  let samples p =
    for _ = 1 to 57 do
      Pmu.record p ~iid:1 ~level:Hierarchy.Mem ~latency:200 ~is_float:false
    done;
    (Pmu.stats_of p 1).miss_events
  in
  Alcotest.(check int) "phase 23 = phase 3 under period 10" (samples b)
    (samples a)

let pmu_phase_shift () =
  (* different phase, same totals: models instrumentation skid *)
  let p1 = Pmu.create ~period:10 () in
  let p2 = Pmu.create ~period:10 ~phase:3 () in
  for _ = 1 to 95 do
    Pmu.record p1 ~iid:1 ~level:Hierarchy.Mem ~latency:200 ~is_float:false;
    Pmu.record p2 ~iid:1 ~level:Hierarchy.Mem ~latency:200 ~is_float:false
  done;
  let m1 = (Pmu.stats_of p1 1).miss_events in
  let m2 = (Pmu.stats_of p2 1).miss_events in
  Alcotest.(check bool) "within one sample" true (abs (m1 - m2) <= 1)

(* ------------------------- coherence ------------------------- *)

module Coherent = Slo_cachesim.Coherent

let coherent_false_sharing () =
  let c = Coherent.create () in
  (* two cores ping-pong writes on the same line *)
  for i = 0 to 99 do
    ignore (Coherent.access c ~core:(i land 1) ~addr:(8 * (i land 1)) ~write:true)
  done;
  Alcotest.(check bool) "invalidation storm" true
    (Coherent.invalidations c > 90)

let coherent_disjoint_lines () =
  let c = Coherent.create () in
  for i = 0 to 99 do
    let core = i land 1 in
    ignore (Coherent.access c ~core ~addr:(core * 64) ~write:true)
  done;
  Alcotest.(check int) "no invalidations" 0 (Coherent.invalidations c);
  (* after warmup, accesses are 1-cycle private hits *)
  let lat = Coherent.access c ~core:0 ~addr:0 ~write:true in
  Alcotest.(check int) "private hit" 1 lat

let coherent_read_sharing_ok () =
  let c = Coherent.create () in
  for i = 0 to 99 do
    ignore (Coherent.access c ~core:(i land 1) ~addr:0 ~write:false)
  done;
  Alcotest.(check int) "shared reads don't invalidate" 0
    (Coherent.invalidations c)

let coherent_bad_core () =
  let c = Coherent.create () in
  Alcotest.(check bool) "core validated" true
    (match Coherent.access c ~core:2 ~addr:0 ~write:false with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "cachesim"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick basic_hit_miss;
          Alcotest.test_case "lru" `Quick lru_eviction;
          Alcotest.test_case "clear" `Quick clear_and_stats;
          Alcotest.test_case "bad config" `Quick bad_config;
          QCheck_alcotest.to_alcotest prop_working_set;
          QCheck_alcotest.to_alcotest prop_miss_bound;
          QCheck_alcotest.to_alcotest prop_matches_reference_model;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "levels" `Quick hierarchy_levels;
          Alcotest.test_case "fp bypass" `Quick fp_bypass;
          Alcotest.test_case "straddle" `Quick straddling_access;
          Alcotest.test_case "partial hit descends only misses" `Quick
            partial_hit_descends_only_misses;
          Alcotest.test_case "per-line fills share L2 line" `Quick
            per_line_fills_share_l2_line;
          Alcotest.test_case "fp straddle touches L2 range" `Quick
            fp_straddle_touches_l2_range;
          Alcotest.test_case "extra cycles" `Quick extra_cycles_accumulate;
        ] );
      ( "ring",
        [
          Alcotest.test_case "meta round-trips" `Quick ring_meta_roundtrip;
          Alcotest.test_case "flush on full, in order" `Quick
            ring_flushes_when_full;
          Alcotest.test_case "correct_skip evicts LRU" `Quick
            correct_skip_evicts_lru;
          Alcotest.test_case "correct_skip caps and carries" `Quick
            correct_skip_caps_and_carries;
          QCheck_alcotest.to_alcotest prop_drain_matches_per_access;
          Alcotest.test_case "drainer matches serial" `Quick
            drainer_matches_serial;
          Alcotest.test_case "drainer join re-raises" `Quick
            drainer_join_reraises;
        ] );
      ( "pmu",
        [
          Alcotest.test_case "first-level misses" `Quick
            pmu_counts_first_level_misses;
          Alcotest.test_case "period" `Quick pmu_sampling_period;
          Alcotest.test_case "negative phase" `Quick pmu_negative_phase;
          Alcotest.test_case "oversized phase" `Quick pmu_oversized_phase;
          Alcotest.test_case "phase" `Quick pmu_phase_shift;
        ] );
      ( "coherent",
        [
          Alcotest.test_case "false sharing" `Quick coherent_false_sharing;
          Alcotest.test_case "disjoint lines" `Quick coherent_disjoint_lines;
          Alcotest.test_case "read sharing" `Quick coherent_read_sharing_ok;
          Alcotest.test_case "bad core" `Quick coherent_bad_core;
        ] );
    ]
