(* Cache simulator: single level, hierarchy, PMU sampling. *)

module Cache = Slo_cachesim.Cache
module Hierarchy = Slo_cachesim.Hierarchy
module Pmu = Slo_cachesim.Pmu

let mk ?(size = 1024) ?(line = 64) ?(assoc = 2) () =
  Cache.create ~name:"t" ~size ~line ~assoc

let basic_hit_miss () =
  let c = mk () in
  Alcotest.(check bool) "cold miss" false (Cache.access c ~addr:0 ~write:false);
  Alcotest.(check bool) "hit same line" true
    (Cache.access c ~addr:63 ~write:false);
  Alcotest.(check bool) "miss next line" false
    (Cache.access c ~addr:64 ~write:true);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let lru_eviction () =
  (* 1024/64/2 => 8 sets; addresses k*512 all map to set 0 *)
  let c = mk () in
  let a0 = 0 and a1 = 512 and a2 = 1024 in
  ignore (Cache.access c ~addr:a0 ~write:false);
  ignore (Cache.access c ~addr:a1 ~write:false);
  ignore (Cache.access c ~addr:a0 ~write:false);
  (* a1 is now LRU; a2 evicts it *)
  ignore (Cache.access c ~addr:a2 ~write:false);
  Alcotest.(check bool) "a0 still resident" true
    (Cache.access c ~addr:a0 ~write:false);
  Alcotest.(check bool) "a1 evicted" false
    (Cache.access c ~addr:a1 ~write:false)

let clear_and_stats () =
  let c = mk () in
  ignore (Cache.access c ~addr:0 ~write:false);
  Cache.clear c;
  Alcotest.(check int) "stats cleared" 0 (Cache.misses c);
  Alcotest.(check bool) "lines invalidated" false
    (Cache.access c ~addr:0 ~write:false)

let bad_config () =
  Alcotest.(check bool) "bad line" true
    (match Cache.create ~name:"x" ~size:100 ~line:48 ~assoc:2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_working_set =
  QCheck.Test.make ~count:100
    ~name:"working set <= capacity never misses after warmup"
    QCheck.(make Gen.(int_range 1 16))
    (fun nlines ->
      let c = Cache.create ~name:"t" ~size:(16 * 64) ~line:64 ~assoc:16 in
      let addrs = List.init nlines (fun i -> i * 64) in
      List.iter (fun a -> ignore (Cache.access c ~addr:a ~write:false)) addrs;
      Cache.reset_stats c;
      List.iter (fun a -> ignore (Cache.access c ~addr:a ~write:false)) addrs;
      Cache.misses c = 0)

let prop_miss_bound =
  QCheck.Test.make ~count:100 ~name:"misses <= accesses"
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 100_000))
    (fun addrs ->
      let c = mk () in
      List.iter (fun a -> ignore (Cache.access c ~addr:a ~write:false)) addrs;
      Cache.misses c + Cache.hits c = List.length addrs
      && Cache.misses c <= List.length addrs)

(* A transparent reference model of a set-associative LRU cache, using
   the plain division/modulo set-index arithmetic the production code
   replaced with shift/mask fast paths: per-access results and final
   hit/miss totals must match exactly, on power-of-two and (L2-Itanium-
   style) non-power-of-two set counts alike. *)
module Ref_model = struct
  type t = {
    line : int;
    nsets : int;
    assoc : int;
    sets : (int * int) array array;  (* (tag, stamp); tag -1 = invalid *)
    mutable tick : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create ~size ~line ~assoc =
    let nsets = size / (line * assoc) in
    { line; nsets; assoc;
      sets = Array.init nsets (fun _ -> Array.make assoc (-1, 0));
      tick = 0; hits = 0; misses = 0 }

  let access t ~addr =
    let line_no = addr / t.line in
    let set = t.sets.(line_no mod t.nsets) in
    let tag = line_no / t.nsets in
    t.tick <- t.tick + 1;
    let way = ref (-1) in
    Array.iteri (fun w (tg, _) -> if tg = tag then way := w) set;
    if !way >= 0 then begin
      set.(!way) <- (tag, t.tick);
      t.hits <- t.hits + 1;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      let victim = ref 0 in
      for w = 1 to t.assoc - 1 do
        if snd set.(w) < snd set.(!victim) then victim := w
      done;
      set.(!victim) <- (tag, t.tick);
      false
    end
end

(* random geometries: line always a power of two, set count sometimes
   not (e.g. 6144-set Itanium L2 shape scaled down: 3 sets here) *)
let gen_geometry =
  QCheck.Gen.(
    oneofl [ 16; 32; 64; 128 ] >>= fun line ->
    oneofl [ 1; 2; 4; 8 ] >>= fun assoc ->
    oneofl [ 2; 3; 4; 6; 8; 16 ] >>= fun nsets ->
    return (line, assoc, nsets))

let prop_matches_reference_model =
  QCheck.Test.make ~count:200
    ~name:"shift/mask access matches div/mod reference model"
    QCheck.(
      pair
        (make gen_geometry
           ~print:(fun (l, a, s) -> Printf.sprintf "line=%d assoc=%d nsets=%d" l a s))
        (list_of_size (Gen.int_range 1 300) (int_range 0 1_000_000)))
    (fun ((line, assoc, nsets), addrs) ->
      let size = line * assoc * nsets in
      let c = Cache.create ~name:"t" ~size ~line ~assoc in
      let r = Ref_model.create ~size ~line ~assoc in
      List.for_all
        (fun addr ->
          Cache.access c ~addr ~write:false = Ref_model.access r ~addr)
        addrs
      && Cache.hits c = r.Ref_model.hits
      && Cache.misses c = r.Ref_model.misses)

(* ------------------------- hierarchy ------------------------- *)

let hierarchy_levels () =
  let h = Hierarchy.create Hierarchy.small in
  let lat1, lvl1 = Hierarchy.access h ~addr:4096 ~size:8 ~write:false ~is_float:false in
  Alcotest.(check bool) "cold goes to memory" true (lvl1 = Hierarchy.Mem);
  Alcotest.(check int) "mem latency" Hierarchy.small.mem_lat lat1;
  let lat2, lvl2 = Hierarchy.access h ~addr:4096 ~size:8 ~write:false ~is_float:false in
  Alcotest.(check bool) "then L1 hit" true (lvl2 = Hierarchy.L1);
  Alcotest.(check int) "l1 latency" Hierarchy.small.l1_lat lat2

let fp_bypass () =
  let h = Hierarchy.create Hierarchy.small in
  ignore (Hierarchy.access h ~addr:8192 ~size:8 ~write:false ~is_float:true);
  let _, lvl = Hierarchy.access h ~addr:8192 ~size:8 ~write:false ~is_float:true in
  Alcotest.(check bool) "FP served by L2, never L1" true (lvl = Hierarchy.L2);
  (* the same line via an integer access misses L1 (floats bypassed it) *)
  let _, lvl_int =
    Hierarchy.access h ~addr:8192 ~size:8 ~write:false ~is_float:false
  in
  Alcotest.(check bool) "int access misses L1" true (lvl_int <> Hierarchy.L1)

let straddling_access () =
  let h = Hierarchy.create Hierarchy.small in
  (* 8 bytes across a 64B boundary touches two L1 lines *)
  ignore (Hierarchy.access h ~addr:(4096 + 60) ~size:8 ~write:false ~is_float:false);
  ignore (Hierarchy.access h ~addr:4096 ~size:1 ~write:false ~is_float:false);
  ignore (Hierarchy.access h ~addr:(4096 + 64) ~size:1 ~write:false ~is_float:false);
  let _, l1 = Hierarchy.access h ~addr:4096 ~size:1 ~write:false ~is_float:false in
  let _, l2 = Hierarchy.access h ~addr:(4096 + 64) ~size:1 ~write:false ~is_float:false in
  Alcotest.(check bool) "both lines resident" true
    (l1 = Hierarchy.L1 && l2 = Hierarchy.L1)

(* A straddling access that partially hits in L1 must descend only the
   L1-missing lines to L2: the L1-hitting lines are served by L1 and may
   neither inflate L2 traffic nor perturb L2 LRU state.

   Geometry of [small]: 64 B L1 lines, 128 B L2 lines. The access at
   [4216, 4232) covers L1 lines 4160 (resident below) and 4224 (cold),
   which fall into two *different* L2 lines (4096..4223 and 4224..4351),
   so an L2 touch of the hitting line would be visible as an L2 hit. *)
let partial_hit_descends_only_misses () =
  let h = Hierarchy.create Hierarchy.small in
  (* warm L1 line [4160,4223]: L1 miss, descends to L2 (miss), memory *)
  let _, lvl0 = Hierarchy.access h ~addr:4160 ~size:8 ~write:false ~is_float:false in
  Alcotest.(check bool) "cold warmup from memory" true (lvl0 = Hierarchy.Mem);
  Alcotest.(check int) "warmup: 1 L1 miss" 1 (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "warmup: 1 L2 miss" 1 (Cache.misses (Hierarchy.l2 h));
  (* straddle [4216,4232): L1 line 4160 hits, L1 line 4224 misses; only
     the missing line may reach L2 *)
  let _, lvl = Hierarchy.access h ~addr:4216 ~size:16 ~write:false ~is_float:false in
  Alcotest.(check bool) "missing line came from memory" true (lvl = Hierarchy.Mem);
  Alcotest.(check int) "L1: one hit (line 4160)" 1 (Cache.hits (Hierarchy.l1 h));
  Alcotest.(check int) "L1: two misses total" 2 (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "L2: hitting L1 line never touched L2" 0
    (Cache.hits (Hierarchy.l2 h));
  Alcotest.(check int) "L2: exactly the missing line descended" 2
    (Cache.misses (Hierarchy.l2 h));
  (* both lines now resident: the same access is a pure L1 hit *)
  let _, lvl2 = Hierarchy.access h ~addr:4216 ~size:16 ~write:false ~is_float:false in
  Alcotest.(check bool) "now an L1 hit" true (lvl2 = Hierarchy.L1);
  Alcotest.(check int) "no further L2 traffic" 2 (Cache.misses (Hierarchy.l2 h));
  Alcotest.(check int) "no L2 hits either" 0 (Cache.hits (Hierarchy.l2 h))

(* Two missing L1 lines inside the same 128 B L2 line are two separate
   L2 requests (each L1 fill is its own lookup): the first misses, the
   second hits. *)
let per_line_fills_share_l2_line () =
  let h = Hierarchy.create Hierarchy.small in
  (* [4096,4224) covers L1 lines 4096 and 4160, both cold, both inside
     the single L2 line [4096,4223] *)
  let _, lvl = Hierarchy.access h ~addr:4096 ~size:128 ~write:false ~is_float:false in
  Alcotest.(check bool) "served by memory" true (lvl = Hierarchy.Mem);
  Alcotest.(check int) "two L1 misses" 2 (Cache.misses (Hierarchy.l1 h));
  Alcotest.(check int) "first fill misses L2" 1 (Cache.misses (Hierarchy.l2 h));
  Alcotest.(check int) "second fill hits the just-filled L2 line" 1
    (Cache.hits (Hierarchy.l2 h));
  (* an all-hit straddling access is served entirely by L1 *)
  let _, lvl2 = Hierarchy.access h ~addr:4100 ~size:120 ~write:false ~is_float:false in
  Alcotest.(check bool) "straddling re-access is L1" true (lvl2 = Hierarchy.L1);
  Alcotest.(check int) "and adds no L2 traffic" 2
    (Cache.misses (Hierarchy.l2 h) + Cache.hits (Hierarchy.l2 h))

(* FP accesses bypass L1: L2 is their first level, and a straddling FP
   access touches every covered L2 line there *)
let fp_straddle_touches_l2_range () =
  let h = Hierarchy.create Hierarchy.small in
  let _, lvl = Hierarchy.access h ~addr:4216 ~size:16 ~write:false ~is_float:true in
  Alcotest.(check bool) "cold FP from memory" true (lvl = Hierarchy.Mem);
  Alcotest.(check int) "both L2 lines touched" 2 (Cache.misses (Hierarchy.l2 h));
  Alcotest.(check int) "L1 untouched by FP" 0
    (Cache.misses (Hierarchy.l1 h) + Cache.hits (Hierarchy.l1 h));
  let _, lvl2 = Hierarchy.access h ~addr:4216 ~size:16 ~write:false ~is_float:true in
  Alcotest.(check bool) "warm FP served by L2" true (lvl2 = Hierarchy.L2)

let extra_cycles_accumulate () =
  let h = Hierarchy.create Hierarchy.small in
  ignore (Hierarchy.access h ~addr:0x10000 ~size:4 ~write:false ~is_float:false);
  Alcotest.(check int) "mem beyond base"
    (Hierarchy.small.mem_lat - Hierarchy.small.l1_lat)
    (Hierarchy.extra_cycles h);
  ignore (Hierarchy.access h ~addr:0x10000 ~size:4 ~write:false ~is_float:false);
  Alcotest.(check int) "L1 hit adds nothing"
    (Hierarchy.small.mem_lat - Hierarchy.small.l1_lat)
    (Hierarchy.extra_cycles h)

(* ------------------------- PMU ------------------------- *)

let pmu_counts_first_level_misses () =
  let p = Pmu.create ~period:1 () in
  Pmu.record p ~iid:1 ~level:Hierarchy.L1 ~latency:1 ~is_float:false;
  Pmu.record p ~iid:1 ~level:Hierarchy.L2 ~latency:11 ~is_float:false;
  Pmu.record p ~iid:1 ~level:Hierarchy.L2 ~latency:11 ~is_float:true;
  (* an FP access served by L2 is NOT a first-level miss on Itanium *)
  Pmu.record p ~iid:2 ~level:Hierarchy.Mem ~latency:200 ~is_float:true;
  Alcotest.(check int) "events" 2 (Pmu.events_seen p);
  Alcotest.(check int) "iid1 misses" 1 (Pmu.stats_of p 1).miss_events;
  Alcotest.(check int) "iid2 latency" 200 (Pmu.stats_of p 2).total_latency

let pmu_sampling_period () =
  let p = Pmu.create ~period:10 () in
  for _ = 1 to 100 do
    Pmu.record p ~iid:7 ~level:Hierarchy.Mem ~latency:200 ~is_float:false
  done;
  Alcotest.(check int) "every 10th sampled" 10 (Pmu.stats_of p 7).miss_events;
  Alcotest.(check int) "all events counted" 100 (Pmu.events_seen p)

(* regression: a negative phase used to leave the internal countdown
   negative (OCaml [mod] keeps the dividend's sign), so the counter
   never reached the period and no event was ever sampled *)
let pmu_negative_phase () =
  let p = Pmu.create ~period:10 ~phase:(-3) () in
  for _ = 1 to 100 do
    Pmu.record p ~iid:5 ~level:Hierarchy.Mem ~latency:200 ~is_float:false
  done;
  let m = (Pmu.stats_of p 5).miss_events in
  Alcotest.(check bool) "negative phase still samples" true (m >= 9 && m <= 11);
  Alcotest.(check int) "all events counted" 100 (Pmu.events_seen p);
  (* phase -3 and phase period-3 are the same offset *)
  let q = Pmu.create ~period:10 ~phase:7 () in
  for _ = 1 to 100 do
    Pmu.record q ~iid:5 ~level:Hierarchy.Mem ~latency:200 ~is_float:false
  done;
  Alcotest.(check int) "equivalent to phase mod period" m
    (Pmu.stats_of q 5).miss_events

let pmu_oversized_phase () =
  (* a phase >= period must behave exactly like phase mod period *)
  let a = Pmu.create ~period:10 ~phase:23 () in
  let b = Pmu.create ~period:10 ~phase:3 () in
  let samples p =
    for _ = 1 to 57 do
      Pmu.record p ~iid:1 ~level:Hierarchy.Mem ~latency:200 ~is_float:false
    done;
    (Pmu.stats_of p 1).miss_events
  in
  Alcotest.(check int) "phase 23 = phase 3 under period 10" (samples b)
    (samples a)

let pmu_phase_shift () =
  (* different phase, same totals: models instrumentation skid *)
  let p1 = Pmu.create ~period:10 () in
  let p2 = Pmu.create ~period:10 ~phase:3 () in
  for _ = 1 to 95 do
    Pmu.record p1 ~iid:1 ~level:Hierarchy.Mem ~latency:200 ~is_float:false;
    Pmu.record p2 ~iid:1 ~level:Hierarchy.Mem ~latency:200 ~is_float:false
  done;
  let m1 = (Pmu.stats_of p1 1).miss_events in
  let m2 = (Pmu.stats_of p2 1).miss_events in
  Alcotest.(check bool) "within one sample" true (abs (m1 - m2) <= 1)

(* ------------------------- coherence ------------------------- *)

module Coherent = Slo_cachesim.Coherent

let coherent_false_sharing () =
  let c = Coherent.create () in
  (* two cores ping-pong writes on the same line *)
  for i = 0 to 99 do
    ignore (Coherent.access c ~core:(i land 1) ~addr:(8 * (i land 1)) ~write:true)
  done;
  Alcotest.(check bool) "invalidation storm" true
    (Coherent.invalidations c > 90)

let coherent_disjoint_lines () =
  let c = Coherent.create () in
  for i = 0 to 99 do
    let core = i land 1 in
    ignore (Coherent.access c ~core ~addr:(core * 64) ~write:true)
  done;
  Alcotest.(check int) "no invalidations" 0 (Coherent.invalidations c);
  (* after warmup, accesses are 1-cycle private hits *)
  let lat = Coherent.access c ~core:0 ~addr:0 ~write:true in
  Alcotest.(check int) "private hit" 1 lat

let coherent_read_sharing_ok () =
  let c = Coherent.create () in
  for i = 0 to 99 do
    ignore (Coherent.access c ~core:(i land 1) ~addr:0 ~write:false)
  done;
  Alcotest.(check int) "shared reads don't invalidate" 0
    (Coherent.invalidations c)

let coherent_bad_core () =
  let c = Coherent.create () in
  Alcotest.(check bool) "core validated" true
    (match Coherent.access c ~core:2 ~addr:0 ~write:false with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "cachesim"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick basic_hit_miss;
          Alcotest.test_case "lru" `Quick lru_eviction;
          Alcotest.test_case "clear" `Quick clear_and_stats;
          Alcotest.test_case "bad config" `Quick bad_config;
          QCheck_alcotest.to_alcotest prop_working_set;
          QCheck_alcotest.to_alcotest prop_miss_bound;
          QCheck_alcotest.to_alcotest prop_matches_reference_model;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "levels" `Quick hierarchy_levels;
          Alcotest.test_case "fp bypass" `Quick fp_bypass;
          Alcotest.test_case "straddle" `Quick straddling_access;
          Alcotest.test_case "partial hit descends only misses" `Quick
            partial_hit_descends_only_misses;
          Alcotest.test_case "per-line fills share L2 line" `Quick
            per_line_fills_share_l2_line;
          Alcotest.test_case "fp straddle touches L2 range" `Quick
            fp_straddle_touches_l2_range;
          Alcotest.test_case "extra cycles" `Quick extra_cycles_accumulate;
        ] );
      ( "pmu",
        [
          Alcotest.test_case "first-level misses" `Quick
            pmu_counts_first_level_misses;
          Alcotest.test_case "period" `Quick pmu_sampling_period;
          Alcotest.test_case "negative phase" `Quick pmu_negative_phase;
          Alcotest.test_case "oversized phase" `Quick pmu_oversized_phase;
          Alcotest.test_case "phase" `Quick pmu_phase_shift;
        ] );
      ( "coherent",
        [
          Alcotest.test_case "false sharing" `Quick coherent_false_sharing;
          Alcotest.test_case "disjoint lines" `Quick coherent_disjoint_lines;
          Alcotest.test_case "read sharing" `Quick coherent_read_sharing_ok;
          Alcotest.test_case "bad core" `Quick coherent_bad_core;
        ] );
    ]
