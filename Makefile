.PHONY: all build test fuzz bench bench-smoke clean

# worker domains for the bench harness
JOBS ?= $(shell nproc 2>/dev/null || echo 2)

all: build

build:
	dune build @all

test:
	dune runtest

# the QCheck pipeline fuzz suite at 10x iterations
fuzz:
	QCHECK_LONG=1 dune exec test/test_fuzz.exe

# the full evaluation: every table and figure, BENCH.json in _artifacts/
bench:
	dune exec bench/main.exe -- --jobs $(JOBS)

# a fast slice for CI: Table 1 plus one Table 3 row, parallel path exercised
bench-smoke:
	dune exec bench/main.exe -- table1 --jobs 2 \
	  --out _artifacts/BENCH-table1.json
	dune exec bench/main.exe -- table3 --only 179.art --jobs 2 \
	  --out _artifacts/BENCH-table3-smoke.json

clean:
	dune clean
