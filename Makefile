.PHONY: all build test fuzz bench bench-smoke accuracy perf-gate serve-smoke serve-load tune-smoke lint perf clean

# worker domains for the bench harness
JOBS ?= $(shell nproc 2>/dev/null || echo 2)

all: build

build:
	dune build @all

test:
	dune runtest

# the QCheck pipeline fuzz suite at 10x iterations
fuzz:
	QCHECK_LONG=1 dune exec test/test_fuzz.exe

# the full evaluation: every table and figure, BENCH.json in _artifacts/
bench:
	dune exec bench/main.exe -- --jobs $(JOBS)

# a fast slice for CI: Table 1 plus one Table 3 row under each VM
# backend and each fidelity. The compare steps fail if the walk,
# closure and superblock artifacts disagree on anything but wall-clock
# (strict mode, equal fidelities), or if the sampled artifact strays
# outside the accuracy bounds against the exact one (accuracy mode)
bench-smoke:
	dune exec bench/main.exe -- table1 --jobs 2 \
	  --out _artifacts/BENCH-table1.json
	dune exec bench/main.exe -- table3 --only 179.art --jobs 2 \
	  --backend walk --out _artifacts/BENCH-table3-walk.json
	dune exec bench/main.exe -- table3 --only 179.art --jobs 2 \
	  --backend closure --out _artifacts/BENCH-table3-smoke.json
	dune exec bench/main.exe -- table3 --only 179.art --jobs 2 \
	  --backend superblock --out _artifacts/BENCH-table3-superblock.json
	dune exec bench/main.exe -- table3 --only 179.art --jobs 2 \
	  --backend superblock --fidelity sampled \
	  --out _artifacts/BENCH-table3-sampled.json
	dune exec bench/compare.exe -- _artifacts/BENCH-table3-walk.json \
	  _artifacts/BENCH-table3-smoke.json
	dune exec bench/compare.exe -- _artifacts/BENCH-table3-smoke.json \
	  _artifacts/BENCH-table3-superblock.json
	dune exec bench/compare.exe -- _artifacts/BENCH-table3-smoke.json \
	  _artifacts/BENCH-table3-sampled.json

# the full-size roster accuracy gate: exact (closure) vs sampled
# (superblock) across every Table 3 benchmark; per-row miss-rate
# deltas, speedup signs and the ACCURACY.json artifact
# ACCURACY_FLAGS overrides fidelity/output, e.g.
#   make accuracy ACCURACY_FLAGS="--fidelity sampled:4096,32768,4096 \
#     --out _artifacts/ACCURACY-skip.json"
# to gate an accuracy-licensed skipping configuration
accuracy:
	dune exec bench/accuracy.exe -- --jobs $(JOBS) $(ACCURACY_FLAGS)

# measure-phase throughput gate: a fresh full-roster exact superblock
# run against the committed baseline (ci/PERF-BASELINE.json), failing
# on a >20% aggregate regression in measure_msteps_per_s. Run serially
# (jobs 1) so the throughput numbers are not distorted by overlap.
perf-gate:
	dune exec bench/main.exe -- table3 --jobs 1 \
	  --backend superblock --fidelity exact \
	  --out _artifacts/BENCH-perfgate.json
	dune exec bench/perfgate.exe -- ci/PERF-BASELINE.json \
	  _artifacts/BENCH-perfgate.json

# the advice daemon end to end: start it on a scratch socket, drive one
# advise + one bench + stats through the CLI client, shut it down
# cleanly, then hammer it with the load generator and require a warm
# cache (SERVE.json lands in _artifacts/)
serve-smoke:
	dune build bin/slopt.exe bench/loadgen.exe
	set -e; \
	SLOPT=_build/default/bin/slopt.exe; \
	SOCK=$$(mktemp -u /tmp/slo-smoke-XXXXXX.sock); \
	$$SLOPT serve --socket $$SOCK & \
	SRV=$$!; \
	trap 'kill $$SRV 2>/dev/null || true' EXIT; \
	$$SLOPT client advise --socket $$SOCK --name 179.art; \
	$$SLOPT client bench --socket $$SOCK --name 179.art; \
	$$SLOPT client stats --socket $$SOCK; \
	$$SLOPT client shutdown --socket $$SOCK; \
	wait $$SRV; \
	trap - EXIT
	_build/default/bench/loadgen.exe --clients 4 --rounds 2 \
	  --check-hit-rate 90 --out _artifacts/SERVE.json

# the serving layer under open-loop (Poisson) load, three gated runs:
# (1) a latency-vs-load sweep over two offered rates against a TCP
# daemon on the warm advise path, gated on a >= 90% result-cache hit
# rate; (2) a restart onto the same --cache-dir, gated on the warmup
# being served from the persistent cache; (3) a deliberate overload of
# the compute pool, gated on bench being shed with structured
# overloaded replies (and zero transport errors) while cached advise
# keeps flowing. Offered rates stay modest because shared CI runners
# cannot hold a tight schedule; the latency-vs-load curve lands in
# SERVE.json for inspection rather than pass/fail.
serve-load:
	dune build bench/loadgen.exe
	rm -rf _artifacts/serve-cache
	_build/default/bench/loadgen.exe --mode open --tcp --clients 4 \
	  --window 256 --rates 2000,5000 --duration-s 5 \
	  --cache-dir _artifacts/serve-cache \
	  --check-hit-rate 90 --out _artifacts/SERVE.json
	_build/default/bench/loadgen.exe --mode open --tcp --clients 2 \
	  --window 64 --rates 1000 --duration-s 2 \
	  --cache-dir _artifacts/serve-cache --check-disk-warm \
	  --check-hit-rate 90 --out _artifacts/SERVE-restart.json
	_build/default/bench/loadgen.exe --mode open --tcp --clients 2 \
	  --window 64 --rates 300 --duration-s 3 --kind shed \
	  --high-watermark 2 --low-watermark 1 --expect-shed \
	  --out _artifacts/SERVE-shed.json

# autotuner smoke: one roster entry (sphinx, whose closure the tuner
# searches in ~30s and strictly improves over the heuristic) through
# the full candidate space under a generous anytime budget, at two
# worker counts. Gates: found never worse than the heuristic, at least
# one strict improvement, and byte-identical winners at --jobs 2 vs
# --jobs 1 (the determinism contract). TUNE-smoke.json in _artifacts/.
tune-smoke:
	dune exec bench/tunebench.exe -- --only sphinx --jobs 2 \
	  --verify-jobs 1 --budget-ms 300000 --check-improved 1 \
	  --out _artifacts/TUNE-smoke.json

# source-located layout diagnostics over the example programs and the
# whole benchmark roster, compared against the checked-in golden list:
# a finding not on ci/lint-golden.txt fails the build. The merged SARIF
# document lands in _artifacts/ for upload.
lint:
	dune build bin/slopt.exe
	mkdir -p _artifacts
	_build/default/bin/slopt.exe check examples/check_demo.mc \
	  examples/pool_demo.mc --roster \
	  --golden ci/lint-golden.txt --sarif _artifacts/LINT.sarif

# measure-phase speedup ladder: the full Table 3 under the walk,
# closure-exact and superblock-sampled configurations, then the
# walk/closure (strict) and closure/sampled (accuracy) ratios
perf:
	dune exec bench/main.exe -- table3 --jobs 1 \
	  --backend walk --out _artifacts/BENCH-walk.json
	dune exec bench/main.exe -- table3 --jobs 1 \
	  --backend closure --out _artifacts/BENCH-closure.json
	dune exec bench/main.exe -- table3 --jobs 1 \
	  --backend superblock --fidelity sampled \
	  --out _artifacts/BENCH-sampled.json
	dune exec bench/compare.exe -- _artifacts/BENCH-walk.json \
	  _artifacts/BENCH-closure.json
	dune exec bench/compare.exe -- _artifacts/BENCH-closure.json \
	  _artifacts/BENCH-sampled.json

clean:
	dune clean
