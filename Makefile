.PHONY: all build test fuzz bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# the QCheck pipeline fuzz suite at 10x iterations
fuzz:
	QCHECK_LONG=1 dune exec test/test_fuzz.exe

bench:
	dune exec bench/main.exe

clean:
	dune clean
