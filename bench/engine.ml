module D = Slo_core.Driver
module L = Slo_core.Legality
module H = Slo_core.Heuristics
module W = Slo_profile.Weights
module Collect = Slo_profile.Collect
module Feedback = Slo_profile.Feedback
module Suite = Slo_suite.Suite
module Table = Slo_util.Table
module Json = Slo_util.Json
module Pool = Slo_exec.Pool
module Backend = Slo_vm.Backend
module Sampled = Slo_cachesim.Sampled

type timings = {
  t_compile_ms : float;
  t_profile_ms : float;
  t_analyze_ms : float;
  t_transform_ms : float;
  t_measure_ms : float;
}

let no_timings =
  { t_compile_ms = 0.0; t_profile_ms = 0.0; t_analyze_ms = 0.0;
    t_transform_ms = 0.0; t_measure_ms = 0.0 }

type record = {
  r_experiment : string;
  r_benchmark : string;
  r_scheme : string option;
  r_error : string option;
  r_cycles : (int * int) option;
  r_steps : (int * int) option;
  r_l1_misses : (int * int) option;
  r_l2_misses : (int * int) option;
  r_accesses : (int * int) option;
  r_speedup_pct : float option;
  r_timings : timings;
}

let timed f =
  let t0 = Slo_util.Clock.now_ns () in
  let r = f () in
  (r, Slo_util.Clock.elapsed_ms ~since:t0)

(* ------------------------------------------------------------------ *)
(* Shared caches. The compile cache is hoisted out of the workers:     *)
(* [precompile] fills it serially up front and workers only read it;   *)
(* on-demand fills (test rosters) serialize on the mutex. The profile  *)
(* memo uses one lock per entry so distinct entries collect in         *)
(* parallel while a duplicate request blocks instead of recollecting.  *)
(* ------------------------------------------------------------------ *)

let compile_mutex = Mutex.create ()

let compile_cache : (string, (Ir.program * float, exn) result) Hashtbl.t =
  Hashtbl.create 16

let compile_uncached (e : Suite.entry) =
  match timed (fun () -> D.compile ~verify:true e.source) with
  | p, ms -> Ok (p, ms)
  | exception exn -> Error exn

let compile (e : Suite.entry) =
  Mutex.lock compile_mutex;
  let res =
    match Hashtbl.find_opt compile_cache e.name with
    | Some r -> r
    | None ->
      let r = compile_uncached e in
      Hashtbl.replace compile_cache e.name r;
      r
  in
  Mutex.unlock compile_mutex;
  match res with Ok pm -> pm | Error exn -> raise exn

let precompile entries = List.iter (fun e -> try ignore (compile e) with _ -> ()) entries

type fb_slot = {
  sl_mutex : Mutex.t;
  mutable sl_fb : Feedback.t option;
}

let fb_mutex = Mutex.create ()
let fb_slots : (string, fb_slot) Hashtbl.t = Hashtbl.create 16

let train_profile (e : Suite.entry) (prog : Ir.program) =
  let slot =
    Mutex.lock fb_mutex;
    let s =
      match Hashtbl.find_opt fb_slots e.name with
      | Some s -> s
      | None ->
        let s = { sl_mutex = Mutex.create (); sl_fb = None } in
        Hashtbl.replace fb_slots e.name s;
        s
    in
    Mutex.unlock fb_mutex;
    s
  in
  Mutex.lock slot.sl_mutex;
  let result =
    match slot.sl_fb with
    | Some fb -> Ok (fb, 0.0)
    | None -> (
      match timed (fun () -> fst (Collect.collect ~args:e.train_args prog)) with
      | fb, ms ->
        slot.sl_fb <- Some fb;
        Ok (fb, ms)
      | exception exn -> Error exn)
  in
  Mutex.unlock slot.sl_mutex;
  match result with Ok r -> r | Error exn -> raise exn

let reset_caches () =
  Mutex.lock compile_mutex;
  Hashtbl.reset compile_cache;
  Mutex.unlock compile_mutex;
  Mutex.lock fb_mutex;
  Hashtbl.reset fb_slots;
  Mutex.unlock fb_mutex

(* ------------------------------------------------------------------ *)
(* Runs                                                                *)
(* ------------------------------------------------------------------ *)

type run = {
  pool : Pool.t;
  run_backend : Backend.t;
  run_fidelity : Sampled.fidelity;
  mutable recs : record list; (* reversed *)
  t_start : int64; (* monotonic, Slo_util.Clock *)
}

let create_run ?(backend = Backend.default) ?(fidelity = Sampled.Exact) ~jobs
    () =
  { pool = Pool.create ~jobs; run_backend = backend; run_fidelity = fidelity;
    recs = []; t_start = Slo_util.Clock.now_ns () }

let jobs run = Pool.jobs run.pool
let backend run = run.run_backend
let fidelity run = run.run_fidelity
let records run = List.rev run.recs
let push_record run r = run.recs <- r :: run.recs
let finish run = Pool.shutdown run.pool

let progress fmt = Printf.printf (fmt ^^ "\n%!")

let short_error msg =
  let msg = String.map (fun c -> if c = '\n' then ' ' else c) msg in
  if String.length msg <= 48 then msg else String.sub msg 0 45 ^ "..."

(* ------------------------------------------------------------------ *)
(* Table 1: types and transformable types (analysis-only rows)         *)
(* ------------------------------------------------------------------ *)

type t1_row = {
  t1_total : int;
  t1_legal : int;
  t1_ptsto : int;
  t1_relax : int;
  t1_compile_ms : float;
  t1_analyze_ms : float;
}

let t1_job (e : Suite.entry) () =
  let prog, t_compile = compile e in
  let (leg, pts), t_analyze =
    timed (fun () ->
        (L.analyze prog, Slo_pointsto.Pointsto.analyze prog))
  in
  let types = L.types leg in
  let ptsto =
    List.length
      (List.filter
         (fun s ->
           L.is_legal leg s
           || (L.is_legal ~relax:true leg s
              && Slo_pointsto.Pointsto.refutable pts s))
         types)
  in
  {
    t1_total = List.length types;
    t1_legal = L.legal_count leg;
    t1_ptsto = ptsto;
    t1_relax = L.legal_count ~relax:true leg;
    t1_compile_ms = t_compile;
    t1_analyze_ms = t_analyze;
  }

let table1 run ~roster =
  let t =
    Table.create
      [ ("Benchmark", Table.Left); ("Types", Table.Right);
        ("Legal", Table.Right); ("%", Table.Right);
        ("PtsTo", Table.Right); ("%", Table.Right);
        ("Relax", Table.Right); ("%", Table.Right);
        ("paper L%", Table.Right); ("paper R%", Table.Right) ]
  in
  (* hoist compilation out of the workers: fill the cache serially here
     so jobs only read it (a failed compile resurfaces inside the job) *)
  precompile roster;
  let futures =
    List.map (fun e -> (e, Pool.submit run.pool (t1_job e))) roster
  in
  let errors = ref [] in
  let sum_l = ref 0.0 and sum_p = ref 0.0 and sum_r = ref 0.0 in
  let n = ref 0 in
  List.iter
    (fun ((e : Suite.entry), fut) ->
      let paper_l, paper_r =
        match e.paper with
        | Some p -> (Table.fpct p.p_legal_pct, Table.fpct p.p_relax_pct)
        | None -> ("-", "-")
      in
      match Pool.await fut with
      | Ok row ->
        let pct x = 100.0 *. float_of_int x /. float_of_int row.t1_total in
        sum_l := !sum_l +. pct row.t1_legal;
        sum_p := !sum_p +. pct row.t1_ptsto;
        sum_r := !sum_r +. pct row.t1_relax;
        incr n;
        Table.add_row t
          [ e.name; string_of_int row.t1_total; string_of_int row.t1_legal;
            Table.fpct (pct row.t1_legal); string_of_int row.t1_ptsto;
            Table.fpct (pct row.t1_ptsto); string_of_int row.t1_relax;
            Table.fpct (pct row.t1_relax); paper_l; paper_r ];
        push_record run
          {
            r_experiment = "table1"; r_benchmark = e.name; r_scheme = None;
            r_error = None; r_cycles = None; r_steps = None;
            r_l1_misses = None;
            r_l2_misses = None; r_accesses = None; r_speedup_pct = None;
            r_timings =
              { no_timings with t_compile_ms = row.t1_compile_ms;
                t_analyze_ms = row.t1_analyze_ms };
          }
      | Error (err : Pool.error) ->
        errors := (e.name, err.err_exn) :: !errors;
        Table.add_row t
          [ e.name; "ERROR"; "-"; "-"; "-"; "-"; "-"; "-"; paper_l; paper_r ];
        push_record run
          {
            r_experiment = "table1"; r_benchmark = e.name; r_scheme = None;
            r_error = Some err.err_exn; r_cycles = None; r_steps = None;
            r_l1_misses = None;
            r_l2_misses = None; r_accesses = None; r_speedup_pct = None;
            r_timings = no_timings;
          })
    futures;
  Table.add_sep t;
  let avg x = if !n = 0 then 0.0 else !x /. float_of_int !n in
  Table.add_row t
    [ "Average:"; ""; ""; Table.fpct (avg sum_l); "";
      Table.fpct (avg sum_p); ""; Table.fpct (avg sum_r);
      Table.fpct Suite.paper_avg_legal_pct;
      Table.fpct Suite.paper_avg_relax_pct ];
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render t);
  List.iter
    (fun (name, msg) ->
      Buffer.add_string buf
        (Printf.sprintf "!! %s failed: %s\n" name msg))
    (List.rev !errors);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table 3: transformed types and performance impact (full pipeline)   *)
(* ------------------------------------------------------------------ *)

type t3_row = {
  t3_total : int;
  t3_transformed : int;
  t3_split_dead : int;
  t3_speedup_pct : float;
  t3_cycles : int * int;
  t3_steps : int * int;
  t3_l1 : int * int;
  t3_l2 : int * int;
  t3_accesses : int * int;
  t3_mismatch : bool;
  t3_timings : timings;
}

let t3_job ~backend ~fidelity (e : Suite.entry) scheme () =
  let prog, t_compile = compile e in
  let feedback, t_profile =
    if W.needs_profile scheme then begin
      let fb, ms = train_profile e prog in
      (Some fb, ms)
    end
    else (None, 0.0)
  in
  let ev =
    D.evaluate ~args:e.ref_args ~verify:true ~backend ~fidelity ~scheme
      ~feedback prog
  in
  let transformed =
    List.length
      (List.filter (fun (d : H.decision) -> d.d_plan <> None) ev.e_decisions)
  in
  let split_dead =
    List.fold_left
      (fun acc (d : H.decision) ->
        match d.d_plan with
        | Some (H.Split s) ->
          acc + List.length s.s_cold + List.length s.s_dead
        | Some (H.Peel p) -> acc + List.length p.p_dead
        | Some (H.Rebuild r) -> acc + List.length r.r_dead
        | Some (H.Pool _) | Some (H.Pad _) | None -> acc)
      0 ev.e_decisions
  in
  {
    t3_total = List.length ev.e_decisions;
    t3_transformed = transformed;
    t3_split_dead = split_dead;
    t3_speedup_pct = ev.e_speedup_pct;
    t3_cycles = (ev.e_before.m_cycles, ev.e_after.m_cycles);
    t3_steps = (ev.e_before.m_result.steps, ev.e_after.m_result.steps);
    t3_l1 = (ev.e_before.m_l1_misses, ev.e_after.m_l1_misses);
    t3_l2 = (ev.e_before.m_l2_misses, ev.e_after.m_l2_misses);
    t3_accesses = (ev.e_before.m_accesses, ev.e_after.m_accesses);
    t3_mismatch = ev.e_before.m_result.output <> ev.e_after.m_result.output;
    t3_timings =
      {
        t_compile_ms = t_compile;
        t_profile_ms = t_profile;
        t_analyze_ms = ev.e_phases.D.ph_analyze_ms;
        t_transform_ms = ev.e_phases.D.ph_transform_ms;
        t_measure_ms = ev.e_phases.D.ph_measure_ms;
      };
  }

let table3 run ~roster =
  let t =
    Table.create
      [ ("Benchmark", Table.Left); ("PBO", Table.Left); ("T", Table.Right);
        ("Tt", Table.Right); ("S/D", Table.Right);
        ("Performance", Table.Right); ("paper", Table.Right) ]
  in
  (* the paper shows mcf and moldyn with and without profiles *)
  let units =
    List.concat_map
      (fun (e : Suite.entry) ->
        (e, W.PBO, "yes")
        ::
        (if List.mem e.name [ "181.mcf"; "moldyn" ] then
           [ (e, W.ISPBO, "no") ]
         else []))
      roster
  in
  precompile roster;
  let futures =
    List.map
      (fun (e, scheme, label) ->
        progress "(evaluating %s [%s]...)" e.Suite.name label;
        ( e, scheme, label,
          Pool.submit run.pool
            (t3_job ~backend:run.run_backend ~fidelity:run.run_fidelity e
               scheme) ))
      units
  in
  let warnings = ref [] in
  let sum_steps = ref 0 and sum_measure_ms = ref 0.0 in
  List.iter
    (fun ((e : Suite.entry), scheme, label, fut) ->
      let paper =
        match e.paper with Some p -> p.p_perf | None -> "-"
      in
      match Pool.await fut with
      | Ok row ->
        if row.t3_mismatch then
          warnings :=
            Printf.sprintf "!! OUTPUT MISMATCH on %s — transformation bug"
              e.name
            :: !warnings;
        let sb, sa = row.t3_steps in
        sum_steps := !sum_steps + sb + sa;
        sum_measure_ms := !sum_measure_ms +. row.t3_timings.t_measure_ms;
        Table.add_row t
          [ e.name; label; string_of_int row.t3_total;
            string_of_int row.t3_transformed;
            string_of_int row.t3_split_dead;
            Printf.sprintf "%+.1f%%" row.t3_speedup_pct; paper ];
        push_record run
          {
            r_experiment = "table3"; r_benchmark = e.name;
            r_scheme = Some (W.name scheme); r_error = None;
            r_cycles = Some row.t3_cycles; r_steps = Some row.t3_steps;
            r_l1_misses = Some row.t3_l1;
            r_l2_misses = Some row.t3_l2;
            r_accesses = Some row.t3_accesses;
            r_speedup_pct = Some row.t3_speedup_pct;
            r_timings = row.t3_timings;
          }
      | Error (err : Pool.error) ->
        warnings :=
          Printf.sprintf "!! %s [%s] failed: %s" e.name label err.err_exn
          :: !warnings;
        Table.add_row t
          [ e.name; label; "-"; "-"; "-";
            "ERROR: " ^ short_error err.err_exn; paper ];
        push_record run
          {
            r_experiment = "table3"; r_benchmark = e.name;
            r_scheme = Some (W.name scheme); r_error = Some err.err_exn;
            r_cycles = None; r_steps = None; r_l1_misses = None;
            r_l2_misses = None; r_accesses = None;
            r_speedup_pct = None; r_timings = no_timings;
          })
    futures;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render t);
  (* the measure phase dominates bench wall-clock; report its aggregate
     VM throughput so backend speedups are visible at a glance *)
  if !sum_measure_ms > 0.0 then
    Buffer.add_string buf
      (Printf.sprintf "measure: %.1f Msteps/s [%s backend, %s]\n"
         (float_of_int !sum_steps /. !sum_measure_ms /. 1000.0)
         (Backend.to_string run.run_backend)
         (Sampled.fidelity_name run.run_fidelity));
  List.iter
    (fun w -> Buffer.add_string buf (w ^ "\n"))
    (List.rev !warnings);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* pool: Table-3-class rows for the index-linked pool rewrite. One     *)
(* row per self-referential record in the roster; the shape-poolable   *)
(* ones are transformed, oracle-validated and measured, the refuted    *)
(* ones carry their first witness so the table doubles as a survey of  *)
(* why pooling does not apply.                                         *)
(* ------------------------------------------------------------------ *)

type pool_row = {
  pl_oracle : string;          (* "ok" or the first failure *)
  pl_speedup_pct : float;
  pl_cycles : int * int;
  pl_steps : int * int;
  pl_l1 : int * int;
  pl_l2 : int * int;
  pl_accesses : int * int;
  pl_timings : timings;
}

let pool_job ~backend ~fidelity (e : Suite.entry) (v : Shape.verdict) () =
  let prog, t_compile = compile e in
  let plan =
    H.Pool { Slo_core.Transform.po_typ = v.Shape.v_typ; po_links = v.v_links }
  in
  let oracle, t_oracle =
    timed (fun () -> Slo_suite.Oracle.run ~args:e.ref_args prog [ plan ])
  in
  let transformed, t_tr =
    timed (fun () -> D.transform_with_plans ~verify:true prog [ plan ])
  in
  let (before, after), t_me =
    timed (fun () ->
        ( D.measure ~args:e.ref_args ~backend ~fidelity prog,
          D.measure ~args:e.ref_args ~backend ~fidelity transformed ))
  in
  {
    pl_oracle =
      (if Slo_suite.Oracle.ok oracle then "ok"
       else
         match oracle.r_failures with
         | f :: _ -> Slo_suite.Oracle.string_of_failure f
         | [] -> "ok");
    pl_speedup_pct = D.speedup_pct ~before ~after;
    pl_cycles = (before.m_cycles, after.m_cycles);
    pl_steps = (before.m_result.steps, after.m_result.steps);
    pl_l1 = (before.m_l1_misses, after.m_l1_misses);
    pl_l2 = (before.m_l2_misses, after.m_l2_misses);
    pl_accesses = (before.m_accesses, after.m_accesses);
    pl_timings =
      {
        t_compile_ms = t_compile;
        t_profile_ms = 0.0;
        t_analyze_ms = t_oracle;
        t_transform_ms = t_tr;
        t_measure_ms = t_me;
      };
  }

let pool_table run ~roster =
  let t =
    Table.create
      [ ("Benchmark", Table.Left); ("Type", Table.Left);
        ("Links", Table.Left); ("Oracle", Table.Left);
        ("Performance", Table.Right) ]
  in
  precompile roster;
  (* shape verdicts are cheap and deterministic: collect them serially,
     then farm out only the measured (poolable) units *)
  let units =
    List.concat_map
      (fun (e : Suite.entry) ->
        match compile e with
        | prog, _ ->
          List.map
            (fun (v : Shape.verdict) -> (e, v))
            (Shape.verdicts (Shape.analyze prog))
        | exception _ -> [])
      roster
  in
  let futures =
    List.map
      (fun ((e : Suite.entry), (v : Shape.verdict)) ->
        if v.Shape.v_poolable then begin
          progress "(pooling %s.%s...)" e.name v.v_typ;
          ( e, v,
            Some
              (Pool.submit run.pool
                 (pool_job ~backend:run.run_backend
                    ~fidelity:run.run_fidelity e v)) )
        end
        else (e, v, None))
      units
  in
  let warnings = ref [] in
  List.iter
    (fun ((e : Suite.entry), (v : Shape.verdict), fut) ->
      let links = String.concat "," v.Shape.v_link_names in
      match fut with
      | None ->
        let why =
          match v.v_witnesses with
          | w :: _ -> Printf.sprintf "not poolable [%s]"
                        (Shape.reason_name w.Shape.sw_reason)
          | [] -> "not poolable"
        in
        Table.add_row t [ e.name; v.v_typ; links; why; "-" ]
      | Some fut -> (
        match Pool.await fut with
        | Ok row ->
          if row.pl_oracle <> "ok" then
            warnings :=
              Printf.sprintf "!! ORACLE REFUSED pool of %s.%s: %s" e.name
                v.v_typ row.pl_oracle
              :: !warnings;
          Table.add_row t
            [ e.name; v.v_typ; links; row.pl_oracle;
              Printf.sprintf "%+.1f%%" row.pl_speedup_pct ];
          push_record run
            {
              r_experiment = "pool"; r_benchmark = e.name;
              r_scheme = None; r_error = None;
              r_cycles = Some row.pl_cycles; r_steps = Some row.pl_steps;
              r_l1_misses = Some row.pl_l1; r_l2_misses = Some row.pl_l2;
              r_accesses = Some row.pl_accesses;
              r_speedup_pct = Some row.pl_speedup_pct;
              r_timings = row.pl_timings;
            }
        | Error (err : Pool.error) ->
          warnings :=
            Printf.sprintf "!! pool of %s.%s failed: %s" e.name v.v_typ
              err.err_exn
            :: !warnings;
          Table.add_row t
            [ e.name; v.v_typ; links; "-";
              "ERROR: " ^ short_error err.err_exn ];
          push_record run
            {
              r_experiment = "pool"; r_benchmark = e.name;
              r_scheme = None; r_error = Some err.err_exn;
              r_cycles = None; r_steps = None; r_l1_misses = None;
              r_l2_misses = None; r_accesses = None; r_speedup_pct = None;
              r_timings = no_timings;
            }))
    futures;
  let buf = Buffer.create 1024 in
  if units = [] then
    Buffer.add_string buf "(no self-referential record types in the roster)\n"
  else Buffer.add_string buf (Table.render t);
  List.iter
    (fun w -> Buffer.add_string buf (w ^ "\n"))
    (List.rev !warnings);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* BENCH.json                                                          *)
(* ------------------------------------------------------------------ *)

let json_of_pair = function
  | Some (b, a) -> (Json.Int b, Json.Int a)
  | None -> (Json.Null, Json.Null)

let json_of_record ?(with_timings = true) r =
  let tm = if with_timings then r.r_timings else no_timings in
  let cyc_b, cyc_a = json_of_pair r.r_cycles in
  let stp_b, stp_a = json_of_pair r.r_steps in
  let l1_b, l1_a = json_of_pair r.r_l1_misses in
  let l2_b, l2_a = json_of_pair r.r_l2_misses in
  let acc_b, acc_a = json_of_pair r.r_accesses in
  (* VM throughput of this row's measure phase; derived from a timing, so
     it is nulled alongside them under [~with_timings:false] *)
  let msteps =
    match r.r_steps with
    | Some (b, a) when with_timings && tm.t_measure_ms > 0.0 ->
      Json.Float (float_of_int (b + a) /. tm.t_measure_ms /. 1000.0)
    | _ -> Json.Null
  in
  Json.Obj
    [ ("experiment", Json.String r.r_experiment);
      ("benchmark", Json.String r.r_benchmark);
      ("scheme",
       match r.r_scheme with Some s -> Json.String s | None -> Json.Null);
      ("error",
       match r.r_error with Some e -> Json.String e | None -> Json.Null);
      ("cycles_before", cyc_b); ("cycles_after", cyc_a);
      ("steps_before", stp_b); ("steps_after", stp_a);
      ("l1_misses_before", l1_b); ("l1_misses_after", l1_a);
      ("l2_misses_before", l2_b); ("l2_misses_after", l2_a);
      ("accesses_before", acc_b); ("accesses_after", acc_a);
      ("speedup_pct",
       match r.r_speedup_pct with Some p -> Json.Float p | None -> Json.Null);
      ("measure_msteps_per_s", msteps);
      ("timings_ms",
       Json.Obj
         [ ("compile", Json.Float tm.t_compile_ms);
           ("profile", Json.Float tm.t_profile_ms);
           ("analyze", Json.Float tm.t_analyze_ms);
           ("transform", Json.Float tm.t_transform_ms);
           ("measure", Json.Float tm.t_measure_ms) ]) ]

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if String.equal line "" then "unknown" else line
  with _ -> "unknown"

let write_json run ~path =
  let window, stride, skip =
    match run.run_fidelity with
    | Sampled.Exact -> (Json.Null, Json.Null, Json.Null)
    | Sampled.Sampled { window; stride; skip } ->
      (Json.Int window, Json.Int stride, Json.Int skip)
  in
  let doc =
    Json.Obj
      [ ("schema_version", Json.Int 3);
        ("tool", Json.String "slo-bench");
        ("git_rev", Json.String (git_rev ()));
        ("backend", Json.String (Backend.to_string run.run_backend));
        ("fidelity", Json.String (Sampled.fidelity_name run.run_fidelity));
        ("sampled_window", window);
        ("sampled_stride", stride);
        ("sampled_skip", skip);
        ("jobs", Json.Int (jobs run));
        ("wall_clock_s",
         Json.Float (Slo_util.Clock.elapsed_ms ~since:run.t_start /. 1000.0));
        ("results", Json.List (List.map json_of_record (records run))) ]
  in
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc
