(* The accuracy gate for sampled cache simulation.

   Usage:
     dune exec bench/accuracy.exe -- [--jobs N] [--only NAME]
       [--fidelity sampled[:W,S]] [--out FILE]

   Runs the roster's table3 measurements twice — exact fidelity on the
   closure backend, then the production fast path (sampled fidelity on
   the superblock backend) — pairs up the rows and enforces the bounds
   the sampled estimators are sold with:

   - execution is exact in every fidelity: steps, accesses and error
     status must be identical;
   - per row and per side (before/after the transformation), the
     estimated L1 miss rate must be within 0.5 percentage points of the
     exact rate, L2 within 1.0pp;
   - the measured speedup must agree in sign (|speedup| below 0.1%
     counts as zero, and a zero only conflicts with a value clearing
     twice that band) — the decision the measurement feeds must not
     flip.

   The per-row report is written to _artifacts/ACCURACY.json (schema
   below) so CI keeps an accuracy trajectory next to BENCH.json's perf
   trajectory. Exits 1 when any bound is exceeded, 2 on usage errors.

   This is the real-size face of the tier-1 roster accuracy tests in
   test/test_sampled.ml (which run scaled-down windows on tiny args). *)

module Engine = Slo_bench.Engine
module Suite = Slo_suite.Suite
module Sampled = Slo_cachesim.Sampled
module Backend = Slo_vm.Backend
module Json = Slo_util.Json

let l1_bound_pp = 0.5
let l2_bound_pp = 1.0
let speedup_zero_pct = 0.1

let say fmt = Printf.printf (fmt ^^ "\n%!")
let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let usage () =
  die
    "usage: accuracy.exe [--jobs N|-j N] [--only NAME]\n\
     \       [--fidelity sampled|sampled:W,S] [--out FILE]"

(* ---------------- row pairing and checks ---------------- *)

let row_label (r : Engine.record) =
  Printf.sprintf "%s/%s [%s]" r.r_experiment r.r_benchmark
    (Option.value ~default:"-" r.r_scheme)

let miss_rate_pct ~misses ~accesses =
  if accesses <= 0 then 0.0
  else 100.0 *. float_of_int misses /. float_of_int accesses

let sign_of x =
  if x > speedup_zero_pct then 1 else if x < -.speedup_zero_pct then -1 else 0

(* A sign disagreement is a decision flip only when the two estimates
   genuinely point different ways: strictly opposite signs, or one in
   the dead zone while the other clears it with margin (2x the zero
   band). Two values straddling the dead-zone edge by a hair (say
   +0.099 vs +0.101) agree for every purpose the measurement feeds;
   flagging them would make the gate a coin flip on near-zero rows. *)
let sign_flip a b =
  let sa = sign_of a and sb = sign_of b in
  if sa = sb then false
  else if sa * sb < 0 then true
  else Float.abs (if sa = 0 then b else a) > 2.0 *. speedup_zero_pct

type side_delta = { d_l1_pp : float; d_l2_pp : float }

(* miss-rate deltas of one side (before or after) of a row pair; [sel]
   picks the side out of the (before, after) counter pairs *)
let side_delta sel (x : Engine.record) (s : Engine.record) =
  match (x.r_l1_misses, x.r_l2_misses, x.r_accesses,
         s.r_l1_misses, s.r_l2_misses, s.r_accesses)
  with
  | Some xl1, Some xl2, Some xacc, Some sl1, Some sl2, Some sacc ->
    let rate m a = miss_rate_pct ~misses:(sel m) ~accesses:(sel a) in
    Some
      {
        d_l1_pp = Float.abs (rate xl1 xacc -. rate sl1 sacc);
        d_l2_pp = Float.abs (rate xl2 xacc -. rate sl2 sacc);
      }
  | _ -> None

type row_report = {
  rr_label : string;
  rr_before : side_delta option;
  rr_after : side_delta option;
  rr_speedup_exact : float option;
  rr_speedup_sampled : float option;
  rr_violations : string list;
}

let check_pair (x : Engine.record) (s : Engine.record) =
  let violations = ref [] in
  let bad fmt =
    Printf.ksprintf (fun m -> violations := m :: !violations) fmt
  in
  let label = row_label x in
  if not (String.equal label (row_label s)) then
    bad "row order differs: %s vs %s" label (row_label s);
  (* execution-exact fields *)
  if x.r_error <> s.r_error then bad "%s: error status differs" label;
  if x.r_steps <> s.r_steps then bad "%s: steps differ between fidelities" label;
  if x.r_accesses <> s.r_accesses then
    bad "%s: access counts differ between fidelities" label;
  let before = side_delta fst x s and after = side_delta snd x s in
  let check side = function
    | None -> ()
    | Some d ->
      if d.d_l1_pp > l1_bound_pp then
        bad "%s %s: L1 miss-rate delta %.3fpp exceeds %.1fpp" label side
          d.d_l1_pp l1_bound_pp;
      if d.d_l2_pp > l2_bound_pp then
        bad "%s %s: L2 miss-rate delta %.3fpp exceeds %.1fpp" label side
          d.d_l2_pp l2_bound_pp
  in
  check "before" before;
  check "after" after;
  (match (x.r_speedup_pct, s.r_speedup_pct) with
  | Some a, Some b when sign_flip a b ->
    bad "%s: speedup sign flips (%+.3f%% exact vs %+.3f%% sampled)" label a b
  | _ -> ());
  {
    rr_label = label;
    rr_before = before;
    rr_after = after;
    rr_speedup_exact = x.r_speedup_pct;
    rr_speedup_sampled = s.r_speedup_pct;
    rr_violations = List.rev !violations;
  }

(* ---------------- the artifact ---------------- *)

let json_of_report (r : row_report) =
  let fdelta = function
    | None -> [ ("l1_delta_pp", Json.Null); ("l2_delta_pp", Json.Null) ]
    | Some d ->
      [ ("l1_delta_pp", Json.Float d.d_l1_pp);
        ("l2_delta_pp", Json.Float d.d_l2_pp) ]
  in
  let fopt = function None -> Json.Null | Some f -> Json.Float f in
  Json.Obj
    [
      ("row", Json.String r.rr_label);
      ("before", Json.Obj (fdelta r.rr_before));
      ("after", Json.Obj (fdelta r.rr_after));
      ("speedup_exact_pct", fopt r.rr_speedup_exact);
      ("speedup_sampled_pct", fopt r.rr_speedup_sampled);
      ("ok", Json.Bool (r.rr_violations = []));
      ("violations", Json.List (List.map (fun v -> Json.String v) r.rr_violations));
    ]

let measure_total_ms records =
  List.fold_left
    (fun acc (r : Engine.record) -> acc +. r.r_timings.t_measure_ms)
    0.0 records

let write_artifact ~path ~fidelity ~reports ~ms_exact ~ms_sampled ~ok =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let j =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ("fidelity", Json.String (Sampled.fidelity_name fidelity));
        ("backend_exact", Json.String (Backend.to_string Backend.Closure));
        ("backend_sampled", Json.String (Backend.to_string Backend.Superblock));
        ( "bounds",
          Json.Obj
            [
              ("l1_pp", Json.Float l1_bound_pp);
              ("l2_pp", Json.Float l2_bound_pp);
              ("speedup_zero_pct", Json.Float speedup_zero_pct);
            ] );
        ("measure_ms_exact", Json.Float ms_exact);
        ("measure_ms_sampled", Json.Float ms_sampled);
        ( "measure_speedup",
          if ms_sampled > 0.0 then Json.Float (ms_exact /. ms_sampled)
          else Json.Null );
        ("rows", Json.List (List.map json_of_report reports));
        ("ok", Json.Bool ok);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string j);
  output_string oc "\n";
  close_out oc

(* ---------------- entry ---------------- *)

let () =
  let jobs = ref 1 in
  let only = ref [] in
  let fidelity = ref Sampled.sampled_default in
  let out = ref (Filename.concat "_artifacts" "ACCURACY.json") in
  let rec parse = function
    | [] -> ()
    | ("--jobs" | "-j") :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> jobs := n; parse rest
      | _ -> die "bad --jobs value %S" v)
    | "--only" :: v :: rest -> only := v :: !only; parse rest
    | "--out" :: v :: rest -> out := v; parse rest
    | "--fidelity" :: v :: rest -> (
      match Sampled.fidelity_of_string v with
      | Ok (Sampled.Sampled _ as f) -> fidelity := f; parse rest
      | Ok Sampled.Exact -> die "--fidelity exact defeats the purpose here"
      | Error msg -> die "%s" msg)
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roster =
    match !only with
    | [] -> Suite.roster
    | names ->
      List.iter
        (fun n ->
          if
            not (List.exists (fun (e : Suite.entry) -> e.name = n) Suite.roster)
          then die "unknown --only benchmark %S" n)
        names;
      List.filter (fun (e : Suite.entry) -> List.mem e.name names) Suite.roster
  in
  let table3 ~backend ~fidelity =
    let run = Engine.create_run ~backend ~fidelity ~jobs:!jobs () in
    let (_ : string) = Engine.table3 run ~roster in
    let records = Engine.records run in
    Engine.finish run;
    records
  in
  say "== accuracy gate: exact (closure) vs %s (superblock) =="
    (Sampled.fidelity_name !fidelity);
  let exact = table3 ~backend:Backend.Closure ~fidelity:Sampled.Exact in
  let sampled = table3 ~backend:Backend.Superblock ~fidelity:!fidelity in
  if List.length exact <> List.length sampled then
    die "row count differs: %d exact vs %d sampled" (List.length exact)
      (List.length sampled);
  let reports = List.map2 check_pair exact sampled in
  List.iter
    (fun r ->
      let show side = function
        | Some d -> Printf.sprintf "%s L1 %.3fpp L2 %.3fpp" side d.d_l1_pp d.d_l2_pp
        | None -> side ^ " -"
      in
      say "  %-36s %s | %s | speedup %s vs %s%s" r.rr_label
        (show "before" r.rr_before) (show "after" r.rr_after)
        (match r.rr_speedup_exact with
        | Some f -> Printf.sprintf "%+.2f%%" f
        | None -> "-")
        (match r.rr_speedup_sampled with
        | Some f -> Printf.sprintf "%+.2f%%" f
        | None -> "-")
        (if r.rr_violations = [] then "" else "  VIOLATES");
      List.iter (fun v -> prerr_endline ("  !! " ^ v)) r.rr_violations)
    reports;
  let ms_exact = measure_total_ms exact
  and ms_sampled = measure_total_ms sampled in
  say "measure phase: %.1f ms exact, %.1f ms sampled (%.2fx)" ms_exact
    ms_sampled
    (if ms_sampled > 0.0 then ms_exact /. ms_sampled else 0.0);
  let ok = List.for_all (fun r -> r.rr_violations = []) reports in
  write_artifact ~path:!out ~fidelity:!fidelity ~reports ~ms_exact ~ms_sampled
    ~ok;
  say "(accuracy report written to %s)" !out;
  if ok then
    say "accuracy: all %d rows within bounds (L1 %.1fpp, L2 %.1fpp, speedup \
         sign)"
      (List.length reports) l1_bound_pp l2_bound_pp
  else begin
    prerr_endline "accuracy: bounds exceeded";
    exit 1
  end
