(* The measure-phase throughput gate.

   Usage:
     dune exec bench/perfgate.exe -- BASELINE.json FRESH.json [--tolerance PCT]

   Reads the committed baseline artifact (ci/PERF-BASELINE.json) and a
   freshly produced BENCH.json, lines their result rows up by
   (experiment, benchmark, scheme), and compares [measure_msteps_per_s]
   — the measure-phase throughput in million VM steps per second, the
   number the batched-ring work is accountable for.

   The gate fails (exit 1) when the AGGREGATE throughput — total steps
   over total measure time across all matched rows, i.e. the
   time-weighted mean of the per-row numbers — regresses by more than
   [--tolerance] percent (default 20). Per-row regressions beyond the
   tolerance are printed as warnings but do not fail the build on
   their own: the small roster programs finish in milliseconds and
   their individual numbers are noise-dominated, while the aggregate
   is dominated by the long-running rows and is stable.

   Rows present in the baseline but missing from the fresh artifact
   (dropped benchmark, renamed scheme) fail the gate: silently losing
   coverage would let the next regression hide. Exit 2 on usage or
   parse errors.

   With --update-baseline the comparison is skipped and FRESH.json is
   copied over BASELINE.json instead (after checking it actually
   carries throughput rows) — the sanctioned way to regenerate
   ci/PERF-BASELINE.json in place after an intentional perf change,
   rather than hand-editing the artifact. *)

module Json = Slo_util.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> die "cannot open %s: %s" path msg
  | ic ->
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Json.of_string s with
    | j -> j
    | exception Json.Parse_error msg -> die "%s: %s" path msg)

let rows j =
  match Json.member "results" j with
  | Some (Json.List rs) -> rs
  | _ -> die "missing 'results' list"

let str_member key j =
  match Json.member key j with Some (Json.String s) -> s | _ -> "?"

let num_member key j =
  match Json.member key j with
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some (Json.Float f) -> Some f
  | _ -> None

let row_key j =
  Printf.sprintf "%s/%s/%s" (str_member "experiment" j)
    (str_member "benchmark" j) (str_member "scheme" j)

let measure_ms j =
  match Json.member "timings_ms" j with
  | Some t -> num_member "measure" t
  | None -> None

(* rows that carry a throughput number: (key, msteps/s, measure ms) *)
let perf_rows j =
  List.filter_map
    (fun r ->
      match (num_member "measure_msteps_per_s" r, measure_ms r) with
      | Some th, Some ms when th > 0.0 && ms > 0.0 -> Some (row_key r, th, ms)
      | _ -> None)
    (rows j)

let aggregate prs =
  (* total steps / total time = time-weighted mean throughput *)
  let steps = List.fold_left (fun a (_, th, ms) -> a +. (th *. ms)) 0.0 prs in
  let time = List.fold_left (fun a (_, _, ms) -> a +. ms) 0.0 prs in
  if time > 0.0 then steps /. time else 0.0

let copy_file ~src ~dst =
  let ic = open_in_bin src in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let tmp = dst ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc body;
  close_out oc;
  Sys.rename tmp dst

let () =
  let base_path = ref "" and fresh_path = ref "" and tol = ref 20.0 in
  let update = ref false in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t > 0.0 -> tol := t
      | _ -> die "bad --tolerance %S" v);
      parse rest
    | "--update-baseline" :: rest ->
      update := true;
      parse rest
    | a :: rest when !base_path = "" ->
      base_path := a;
      parse rest
    | a :: rest when !fresh_path = "" ->
      fresh_path := a;
      parse rest
    | a :: _ -> die "unexpected argument %S" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !fresh_path = "" then
    die "usage: perfgate BASELINE.json FRESH.json [--tolerance PCT] \
         [--update-baseline]";
  if !update then begin
    (* refuse to enshrine an artifact the gate itself could not read *)
    let fresh = perf_rows (read_file !fresh_path) in
    if fresh = [] then die "%s carries no throughput rows" !fresh_path;
    copy_file ~src:!fresh_path ~dst:!base_path;
    Printf.printf "baseline %s regenerated from %s (%d throughput rows)\n"
      !base_path !fresh_path (List.length fresh);
    exit 0
  end;
  let base = perf_rows (read_file !base_path) in
  let fresh = perf_rows (read_file !fresh_path) in
  if base = [] then die "%s carries no throughput rows" !base_path;
  if fresh = [] then die "%s carries no throughput rows" !fresh_path;
  let failed = ref false in
  (* per-row report; missing coverage fails, slow rows only warn *)
  List.iter
    (fun (key, bth, _) ->
      match List.find_opt (fun (k, _, _) -> String.equal k key) fresh with
      | None ->
        Printf.printf "FAIL %-40s baseline %8.1f Msteps/s, missing from fresh artifact\n"
          key bth;
        failed := true
      | Some (_, fth, _) ->
        let delta = (fth /. bth -. 1.0) *. 100.0 in
        let tag = if delta < -. !tol then "warn" else "ok  " in
        Printf.printf "%s %-40s %8.1f -> %8.1f Msteps/s (%+.1f%%)\n" tag key
          bth fth delta)
    base;
  let agg_b = aggregate base and agg_f = aggregate fresh in
  let delta = (agg_f /. agg_b -. 1.0) *. 100.0 in
  Printf.printf "aggregate measure throughput: %.1f -> %.1f Msteps/s (%+.1f%%, tolerance -%.0f%%)\n"
    agg_b agg_f delta !tol;
  if delta < -. !tol then begin
    Printf.printf "FAIL aggregate regression beyond tolerance\n";
    failed := true
  end;
  exit (if !failed then 1 else 0)
