(* Benchmark harness: regenerates every table and figure of the paper.

   Usage:
     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe table1     -- one experiment
   Targets: table1 table2 table3 figure1 figure2 ablation overhead
            casestudies timings *)

module D = Slo_core.Driver
module L = Slo_core.Legality
module A = Slo_core.Affinity
module H = Slo_core.Heuristics
module T = Slo_core.Transform
module Adv = Slo_core.Advisor
module W = Slo_profile.Weights
module Collect = Slo_profile.Collect
module Matching = Slo_profile.Matching
module Suite = Slo_suite.Suite
module Table = Slo_util.Table
module Stats = Slo_util.Stats

let say fmt = Printf.printf (fmt ^^ "\n%!")

let compile_cache : (string, Ir.program) Hashtbl.t = Hashtbl.create 16

let compile (e : Suite.entry) =
  match Hashtbl.find_opt compile_cache e.name with
  | Some p -> p
  | None ->
    let p = D.compile e.source in
    Hashtbl.replace compile_cache e.name p;
    p

(* ------------------------------------------------------------------ *)
(* Table 1: types and transformable types                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  say "== Table 1: Types and transformable types, with and without";
  say "==          CSTF/CSTT/ATKN (plus the real points-to column) ==";
  let t =
    Table.create
      [ ("Benchmark", Table.Left); ("Types", Table.Right);
        ("Legal", Table.Right); ("%", Table.Right);
        ("PtsTo", Table.Right); ("%", Table.Right);
        ("Relax", Table.Right); ("%", Table.Right);
        ("paper L%", Table.Right); ("paper R%", Table.Right) ]
  in
  let sum_l = ref 0.0 and sum_p = ref 0.0 and sum_r = ref 0.0 in
  let n = ref 0 in
  List.iter
    (fun (e : Suite.entry) ->
      let prog = compile e in
      let leg = L.analyze prog in
      let pts = Slo_pointsto.Pointsto.analyze prog in
      let types = L.types leg in
      let total = List.length types in
      let legal = L.legal_count leg in
      let relax = L.legal_count ~relax:true leg in
      (* points-to-legal: strict-legal, or relax-recoverable and not
         collapsed *)
      let ptsto =
        List.length
          (List.filter
             (fun s ->
               L.is_legal leg s
               || (L.is_legal ~relax:true leg s
                  && Slo_pointsto.Pointsto.refutable pts s))
             types)
      in
      let pct x = 100.0 *. float_of_int x /. float_of_int total in
      sum_l := !sum_l +. pct legal;
      sum_p := !sum_p +. pct ptsto;
      sum_r := !sum_r +. pct relax;
      incr n;
      let paper_l, paper_r =
        match e.paper with
        | Some p -> (Table.fpct p.p_legal_pct, Table.fpct p.p_relax_pct)
        | None -> ("-", "-")
      in
      Table.add_row t
        [ e.name; string_of_int total; string_of_int legal;
          Table.fpct (pct legal); string_of_int ptsto;
          Table.fpct (pct ptsto); string_of_int relax;
          Table.fpct (pct relax); paper_l; paper_r ])
    Suite.roster;
  Table.add_sep t;
  let avg x = !x /. float_of_int !n in
  Table.add_row t
    [ "Average:"; ""; ""; Table.fpct (avg sum_l); "";
      Table.fpct (avg sum_p); ""; Table.fpct (avg sum_r);
      Table.fpct Suite.paper_avg_legal_pct;
      Table.fpct Suite.paper_avg_relax_pct ];
  print_string (Table.render t);
  say ""

(* ------------------------------------------------------------------ *)
(* Table 2: relative field hotness under the weighting schemes         *)
(* ------------------------------------------------------------------ *)

let mcf_feedbacks = ref None

let get_mcf_feedbacks () =
  match !mcf_feedbacks with
  | Some fbs -> fbs
  | None ->
    let e = Suite.find "181.mcf" in
    let prog = compile e in
    say "(collecting mcf profiles: train, reference, uninstrumented...)";
    let fb_train, _ = Collect.collect ~args:e.train_args prog in
    let fb_ref, _ = Collect.collect ~args:e.ref_args prog in
    let fb_noinstr, _ =
      Collect.collect ~args:e.train_args ~instrument:false prog
    in
    let fbs = (prog, fb_train, fb_ref, fb_noinstr) in
    mcf_feedbacks := Some fbs;
    fbs

let field_hotness prog scheme fb =
  let bw = W.block_weights prog scheme ~feedback:fb in
  let aff = A.analyze prog bw in
  match A.graph aff "node" with
  | Some g -> A.relative_hotness g
  | None -> [||]

(* d-cache columns: per-field sampled miss counts / latencies *)
let field_dcache_metric prog fb ~latency =
  let matched = Matching.apply prog fb in
  let acc = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Iload (_, _, _, Some a) | Ir.Istore (_, _, _, Some a)
                when String.equal a.astruct "node" -> (
                match Hashtbl.find_opt matched.instr_dcache i.iid with
                | Some st ->
                  let v =
                    if latency then st.latency else st.misses
                  in
                  let prev =
                    Option.value ~default:0 (Hashtbl.find_opt acc a.afield)
                  in
                  Hashtbl.replace acc a.afield (prev + v)
                | None -> ())
              | _ -> ())
            b.instrs)
        f.fblocks)
    prog.Ir.funcs;
  let decl = Structs.find prog.Ir.structs "node" in
  let raw =
    Array.init (Array.length decl.fields) (fun fi ->
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt acc fi)))
  in
  Stats.relative_percent raw

let table2 () =
  say "== Table 2: Relative field hotness for mcf node_t under the";
  say "==          weighting schemes, with correlation r to PBO ==";
  let prog, fb_train, fb_ref, fb_noinstr = get_mcf_feedbacks () in
  let columns =
    [ ("PBO", field_hotness prog W.PBO (Some fb_train));
      ("PPBO", field_hotness prog W.PPBO (Some fb_ref));
      ("SPBO", field_hotness prog W.SPBO None);
      ("ISPBO", field_hotness prog W.ISPBO None);
      ("ISPBO.NO", field_hotness prog W.ISPBO_NO None);
      ("ISPBO.W", field_hotness prog W.ISPBO_W None);
      ("DMISS", field_dcache_metric prog fb_train ~latency:false);
      ("DLAT", field_dcache_metric prog fb_train ~latency:true);
      ("DMISS.NO", field_dcache_metric prog fb_noinstr ~latency:false) ]
  in
  let decl = Structs.find prog.Ir.structs "node" in
  let t =
    Table.create
      (("Field", Table.Left)
      :: List.map (fun (n, _) -> (n, Table.Right)) columns)
  in
  Array.iteri
    (fun fi (f : Structs.field) ->
      Table.add_row t
        (f.name
        :: List.map
             (fun (_, col) ->
               if fi < Array.length col then Table.fpct col.(fi) else "-")
             columns))
    decl.fields;
  Table.add_sep t;
  let baseline = List.assoc "PBO" columns in
  let hottest = Stats.argmax baseline in
  let corr col = Stats.correlation baseline col in
  let corr' col = Stats.correlation_excluding hottest baseline col in
  Table.add_row t
    ("Correlation r"
    :: List.map (fun (_, col) -> Printf.sprintf "%.3f" (corr col)) columns);
  Table.add_row t
    ("Correlation r'"
    :: List.map (fun (_, col) -> Printf.sprintf "%.3f" (corr' col)) columns);
  print_string (Table.render t);
  say "(r' disregards the PBO-hottest field, %s; paper: potential)"
    decl.fields.(hottest).name;
  say ""

(* ------------------------------------------------------------------ *)
(* Table 3: transformed types and performance impact                   *)
(* ------------------------------------------------------------------ *)

let eval_row (e : Suite.entry) scheme =
  let prog = compile e in
  let feedback =
    if W.needs_profile scheme then begin
      let fb, _ = Collect.collect ~args:e.train_args prog in
      Some fb
    end
    else None
  in
  D.evaluate ~args:e.ref_args ~scheme ~feedback prog

let table3 () =
  say "== Table 3: Transformable/transformed types and performance ==";
  let t =
    Table.create
      [ ("Benchmark", Table.Left); ("PBO", Table.Left); ("T", Table.Right);
        ("Tt", Table.Right); ("S/D", Table.Right);
        ("Performance", Table.Right); ("paper", Table.Right) ]
  in
  let do_row (e : Suite.entry) scheme pbo_label =
    say "(evaluating %s [%s]...)" e.name pbo_label;
    let ev = eval_row e scheme in
    if
      ev.e_before.m_result.output <> ev.e_after.m_result.output
    then
      say "!! OUTPUT MISMATCH on %s — transformation bug" e.name;
    let total = List.length ev.e_decisions in
    let transformed =
      List.length (List.filter (fun (d : H.decision) -> d.d_plan <> None)
                     ev.e_decisions)
    in
    let split_dead =
      List.fold_left
        (fun acc (d : H.decision) ->
          match d.d_plan with
          | Some (H.Split s) ->
            acc + List.length s.s_cold + List.length s.s_dead
          | Some (H.Peel p) -> acc + List.length p.p_dead
          | Some (H.Rebuild r) -> acc + List.length r.r_dead
          | None -> acc)
        0 ev.e_decisions
    in
    Table.add_row t
      [ e.name; pbo_label; string_of_int total; string_of_int transformed;
        string_of_int split_dead;
        Printf.sprintf "%+.1f%%" ev.e_speedup_pct;
        (match e.paper with Some p -> p.p_perf | None -> "-") ]
  in
  List.iter
    (fun (e : Suite.entry) ->
      do_row e W.PBO "yes";
      (* the paper shows mcf and moldyn with and without profiles *)
      if List.mem e.name [ "181.mcf"; "moldyn" ] then
        do_row e W.ISPBO "no")
    Suite.roster;
  print_string (Table.render t);
  say "";
  say "(performance = speedup (cycles_before/cycles_after - 1);";
  say " the simulator over-rewards splitting relative to Itanium hardware —";
  say " see EXPERIMENTS.md for the shape comparison)";
  say ""

(* ------------------------------------------------------------------ *)
(* Figure 1: layouts before/after splitting and peeling                *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  say "== Figure 1: an array of record types (a), after splitting (b),";
  say "==           and after peeling (c) ==";
  let src =
    "struct rec { long hot1; double cold1; long hot2; double cold2; };\n\
     struct rec *arr;\n\
     long n;\n\
     long use_hot() { long i; long s = 0;\n\
     for (i = 0; i < n; i++) { s = s + arr[i].hot1 + arr[i].hot2; }\n\
     return s; }\n\
     double use_cold() { long i; double s = 0.0;\n\
     for (i = 0; i < n; i = i + 64) { s = s + arr[i].cold1 + arr[i].cold2; }\n\
     return s; }\n\
     int main() { long it; long s = 0; double c = 0.0; n = 4096;\n\
     arr = (struct rec*)malloc(n * sizeof(struct rec));\n\
     for (it = 0; it < n; it++) { arr[it].hot1 = it; arr[it].hot2 = 2*it;\n\
     arr[it].cold1 = it * 0.5; arr[it].cold2 = it * 0.25; }\n\
     for (it = 0; it < 200; it++) { s = s + use_hot();\n\
     if (it % 50 == 0) { c = c + use_cold(); } }\n\
     printf(\"%ld %g\\n\", s, c); return 0; }\n"
  in
  let show prog label =
    say "--- %s ---" label;
    let layout = Layout.create prog.Ir.structs in
    List.iter
      (fun name -> print_string (Layout.describe layout name))
      (Structs.names prog.Ir.structs)
  in
  let prog = D.compile src in
  show prog "(a) original array of structures";
  let split_prog = Ircopy.copy_program prog in
  T.split split_prog
    { T.s_typ = "rec"; s_hot = [ 0; 2 ]; s_cold = [ 1; 3 ]; s_dead = [] };
  show split_prog "(b) after structure splitting (link pointer inserted)";
  let r1 = Slo_vm.Interp.run_program prog in
  let r2 = Slo_vm.Interp.run_program split_prog in
  say "outputs match after splitting: %b" (r1.output = r2.output);
  (* peeling needs the anchor-global form, which this program has *)
  let peel_prog = Ircopy.copy_program prog in
  T.peel peel_prog
    { T.p_typ = "rec"; p_live = [ 0; 1; 2; 3 ]; p_dead = [];
      p_globals = [ "arr" ] };
  show peel_prog "(c) after structure peeling (one array per field)";
  let r3 = Slo_vm.Interp.run_program peel_prog in
  say "outputs match after peeling:   %b" (r1.output = r3.output);
  say ""

(* ------------------------------------------------------------------ *)
(* Figure 2: the advisory tool's output                                *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  say "== Figure 2: the advisory tool's output (mcf node_t) ==";
  let prog, fb_train, _, _ = get_mcf_feedbacks () in
  let leg, aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some fb_train) in
  let decisions = H.decide prog leg aff ~scheme:W.PBO in
  let matched = Matching.apply prog fb_train in
  let adv =
    Adv.build prog leg aff ~decisions ~dcache:(Some matched.instr_dcache)
  in
  print_string (Adv.report ~only:[ "node" ] adv);
  (match Adv.vcg adv "node" with
  | Some vcg ->
    let dir = "_artifacts" in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out (Filename.concat dir "node.vcg") in
    output_string oc vcg;
    close_out oc;
    say "(VCG control file written to _artifacts/node.vcg)"
  | None -> ());
  say ""

(* ------------------------------------------------------------------ *)
(* Ablation: the splitting observation of section 2.4                  *)
(* ------------------------------------------------------------------ *)

let ablation () =
  say "== Ablation (2.4): 'splitting out hot fields hurts' — forcing";
  say "==  time (paper: -9%%) and time+mark (paper: -35%%) out of node ==";
  let e = Suite.find "181.mcf" in
  let prog = compile e in
  let fb, _ = Collect.collect ~args:e.train_args prog in
  let leg, aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some fb) in
  let decisions = H.decide prog leg aff ~scheme:W.PBO in
  let base_plan =
    match
      List.find_map
        (fun (d : H.decision) ->
          match d.d_plan with
          | Some (H.Split s) when String.equal s.s_typ "node" -> Some s
          | _ -> None)
        decisions
    with
    | Some s -> s
    | None -> failwith "expected a split plan for node"
  in
  let fidx name =
    match Structs.field_index prog.Ir.structs "node" name with
    | Some i -> i
    | None -> failwith ("no field " ^ name)
  in
  let before = D.measure ~args:e.train_args prog in
  let run_plan label (plan : T.split_spec) =
    let p = D.transform_with_plans prog [ H.Split plan ] in
    let after = D.measure ~args:e.train_args p in
    if before.m_result.output <> after.m_result.output then
      say "!! OUTPUT MISMATCH in ablation %s" label;
    say "  %-28s %+6.1f%%  (cycles %d -> %d)" label
      (D.speedup_pct ~before ~after)
      before.m_cycles after.m_cycles
  in
  run_plan "framework plan" base_plan;
  let force extra =
    {
      base_plan with
      T.s_hot = List.filter (fun f -> not (List.mem f extra)) base_plan.s_hot;
      s_cold = base_plan.s_cold @ extra;
    }
  in
  run_plan "also split out 'time'" (force [ fidx "time" ]);
  run_plan "also split out 'time'+'mark'" (force [ fidx "time"; fidx "mark" ]);
  say ""

(* ------------------------------------------------------------------ *)
(* Case studies of section 3.4                                         *)
(* ------------------------------------------------------------------ *)

let casestudies () =
  say "== Case studies (3.4): SPEC2006 sketches ==";
  (* (a) hot-field grouping guided by the advisor *)
  let e = Suite.find "spec2006.hotgroup" in
  let prog = compile e in
  let fb, _ = Collect.collect ~args:e.train_args prog in
  let leg, aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some fb) in
  let g = Option.get (A.graph aff "bigobj") in
  let rel = A.relative_hotness g in
  let decl = Structs.find prog.Ir.structs "bigobj" in
  let hot =
    List.filter (fun fi -> rel.(fi) >= 50.0)
      (List.init (Array.length decl.fields) Fun.id)
  in
  say "  advisor-identified hot fields of bigobj: %s (paper: 4 hot fields)"
    (String.concat ", "
       (List.map (fun fi -> decl.fields.(fi).Structs.name) hot));
  say "  automatic transform: %s (blocked, as in the paper)"
    (match
       (List.find
          (fun (d : H.decision) -> String.equal d.d_typ "bigobj")
          (H.decide prog leg aff ~scheme:W.PBO))
       .d_plan
     with
    | Some _ -> "planned"
    | None -> "none");
  (* apply the advice by hand: group the hot four up front *)
  let cold =
    List.filter (fun fi -> not (List.mem fi hot))
      (List.init (Array.length decl.fields) Fun.id)
  in
  let regrouped = Ircopy.copy_program prog in
  T.rebuild regrouped
    { T.r_typ = "bigobj"; r_order = hot @ cold; r_dead = [] };
  let before = D.measure ~args:e.ref_args prog in
  let after = D.measure ~args:e.ref_args regrouped in
  if before.m_result.output <> after.m_result.output then
    say "!! OUTPUT MISMATCH in hot-group case study";
  say "  manual hot-field grouping: %+.1f%% (paper: +2.5%%)"
    (D.speedup_pct ~before ~after);
  (* (b) the two-field peeling case *)
  let e2 = Suite.find "spec2006.peel2" in
  let prog2 = compile e2 in
  let fb2, _ = Collect.collect ~args:e2.train_args prog2 in
  let ev = D.evaluate ~args:e2.ref_args ~scheme:W.PBO ~feedback:(Some fb2) prog2 in
  say "  two-field record peeling:  %+.1f%% (paper: ~+40%%) [%s]"
    ev.e_speedup_pct
    (String.concat "; "
       (List.filter_map
          (fun (d : H.decision) ->
            Option.map H.plan_summary d.d_plan)
          ev.e_decisions));
  say ""

(* ------------------------------------------------------------------ *)
(* Compile-time overhead (2.5) and Bechamel phase timings              *)
(* ------------------------------------------------------------------ *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let overhead () =
  say "== Compile-time overhead (2.5): layout analysis vs base compile ==";
  say "   (paper: FE ~2.5%%, IPA < 4%%, BE ~1%%)";
  let t =
    Table.create
      [ ("Benchmark", Table.Left); ("compile[ms]", Table.Right);
        ("FE+IPA[ms]", Table.Right); ("BE[ms]", Table.Right);
        ("FE+IPA ovh", Table.Right); ("BE ovh", Table.Right) ]
  in
  List.iter
    (fun (e : Suite.entry) ->
      let (prog : Ir.program), t_compile = time_it (fun () -> D.compile e.source) in
      let (leg, aff), t_analysis =
        time_it (fun () -> D.analyze prog ~scheme:W.ISPBO ~feedback:None)
      in
      let decisions = H.decide prog leg aff ~scheme:W.ISPBO in
      let plans = H.plans decisions in
      let _, t_be = time_it (fun () -> D.transform_with_plans prog plans) in
      Table.add_row t
        [ e.name;
          Printf.sprintf "%.1f" (t_compile *. 1000.0);
          Printf.sprintf "%.1f" (t_analysis *. 1000.0);
          Printf.sprintf "%.1f" (t_be *. 1000.0);
          Printf.sprintf "%.1f%%" (100.0 *. t_analysis /. t_compile);
          Printf.sprintf "%.1f%%" (100.0 *. t_be /. t_compile) ])
    Suite.roster;
  print_string (Table.render t);
  say ""

let timings () =
  say "== Bechamel micro-timings of the analysis phases (mcf) ==";
  let e = Suite.find "181.mcf" in
  let prog = compile e in
  let open Bechamel in
  let tests =
    [ Test.make ~name:"table1:legality"
        (Staged.stage (fun () -> ignore (L.analyze prog)));
      Test.make ~name:"table2:affinity+ISPBO"
        (Staged.stage (fun () ->
             let bw = W.block_weights prog W.ISPBO ~feedback:None in
             ignore (A.analyze prog bw)));
      Test.make ~name:"table3:plan+transform"
        (Staged.stage (fun () ->
             let leg, aff = D.analyze prog ~scheme:W.ISPBO ~feedback:None in
             let plans = H.plans (H.decide prog leg aff ~scheme:W.ISPBO) in
             ignore (D.transform_with_plans prog plans)));
      Test.make ~name:"pointsto"
        (Staged.stage (fun () -> ignore (Slo_pointsto.Pointsto.analyze prog)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
            say "  %-28s %10.1f us/run" name (est /. 1000.0)
          | Some _ | None -> say "  %-28s (no estimate)" name)
        results)
    tests;
  say ""

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

let all () =
  table1 ();
  table2 ();
  figure1 ();
  figure2 ();
  table3 ();
  ablation ();
  casestudies ();
  overhead ();
  timings ()

let () =
  match Array.to_list Sys.argv with
  | _ :: [] -> all ()
  | _ :: targets ->
    List.iter
      (fun t ->
        match t with
        | "table1" -> table1 ()
        | "table2" -> table2 ()
        | "table3" -> table3 ()
        | "figure1" -> figure1 ()
        | "figure2" -> figure2 ()
        | "ablation" -> ablation ()
        | "casestudies" -> casestudies ()
        | "overhead" -> overhead ()
        | "timings" -> timings ()
        | other ->
          Printf.eprintf "unknown target %S\n" other;
          exit 2)
      targets
  | [] -> all ()
