(* Benchmark harness: regenerates every table and figure of the paper.

   Usage:
     dune exec bench/main.exe                     -- everything, serially
     dune exec bench/main.exe -- table1 --jobs 8  -- one experiment, 8 workers
   Targets: table1 table2 table3 pool figure1 figure2 ablation overhead
            casestudies timings
   Options:
     --jobs N | -j N   worker domains for the parallel experiments
                       (table1, table3); default 1
     --only NAME       restrict table1/table3 to this roster entry
                       (repeatable)
     --backend B       VM engine for the measurement runs: walk (the
                       tree-walking reference), closure (the
                       closure-compiled engine; default) or superblock
                       (closure compilation + fused jump chains)
     --fidelity F      cache-simulation fidelity: exact (default),
                       sampled, sampled:WINDOW,STRIDE or
                       sampled:WINDOW,STRIDE,SKIP — sampled runs simulate
                       windows in detail and warm (or, with SKIP,
                       fast-forward past) the rest, trading bounded
                       counter accuracy for measure throughput
     --out FILE        where to write the machine-readable results
                       (default _artifacts/BENCH.json)

   Every run writes machine-readable per-row results (cycles, misses,
   speedup, per-phase timings, jobs, git rev) to the --out file. *)

module D = Slo_core.Driver
module L = Slo_core.Legality
module A = Slo_core.Affinity
module H = Slo_core.Heuristics
module T = Slo_core.Transform
module Adv = Slo_core.Advisor
module W = Slo_profile.Weights
module Collect = Slo_profile.Collect
module Matching = Slo_profile.Matching
module Suite = Slo_suite.Suite
module Table = Slo_util.Table
module Stats = Slo_util.Stats
module Engine = Slo_bench.Engine

let say fmt = Printf.printf (fmt ^^ "\n%!")

let compile (e : Suite.entry) = fst (Engine.compile e)

(* ------------------------------------------------------------------ *)
(* Table 1: types and transformable types                              *)
(* ------------------------------------------------------------------ *)

let table1 run roster =
  say "== Table 1: Types and transformable types, with and without";
  say "==          CSTF/CSTT/ATKN (plus the real points-to column) ==";
  print_string (Engine.table1 run ~roster);
  say ""

(* ------------------------------------------------------------------ *)
(* Table 2: relative field hotness under the weighting schemes         *)
(* ------------------------------------------------------------------ *)

let mcf_feedbacks = ref None

let get_mcf_feedbacks () =
  match !mcf_feedbacks with
  | Some fbs -> fbs
  | None ->
    let e = Suite.find "181.mcf" in
    let prog = compile e in
    say "(collecting mcf profiles: train, reference, uninstrumented...)";
    (* the train profile comes from the shared memo, so Table 3's PBO row
       and the ablation reuse this run instead of re-collecting *)
    let fb_train, _ = Engine.train_profile e prog in
    let fb_ref, _ = Collect.collect ~args:e.ref_args prog in
    let fb_noinstr, _ =
      Collect.collect ~args:e.train_args ~instrument:false prog
    in
    let fbs = (prog, fb_train, fb_ref, fb_noinstr) in
    mcf_feedbacks := Some fbs;
    fbs

let field_hotness prog scheme fb =
  let bw = W.block_weights prog scheme ~feedback:fb in
  let aff = A.analyze prog bw in
  match A.graph aff "node" with
  | Some g -> A.relative_hotness g
  | None -> [||]

(* d-cache columns: per-field sampled miss counts / latencies *)
let field_dcache_metric prog fb ~latency =
  let matched = Matching.apply prog fb in
  let acc = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun (i : Ir.instr) ->
              match i.idesc with
              | Ir.Iload (_, _, _, Some a) | Ir.Istore (_, _, _, Some a)
                when String.equal a.astruct "node" -> (
                match Hashtbl.find_opt matched.instr_dcache i.iid with
                | Some st ->
                  let v =
                    if latency then st.latency else st.misses
                  in
                  let prev =
                    Option.value ~default:0 (Hashtbl.find_opt acc a.afield)
                  in
                  Hashtbl.replace acc a.afield (prev + v)
                | None -> ())
              | _ -> ())
            b.instrs)
        f.fblocks)
    prog.Ir.funcs;
  let decl = Structs.find prog.Ir.structs "node" in
  let raw =
    Array.init (Array.length decl.fields) (fun fi ->
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt acc fi)))
  in
  Stats.relative_percent raw

let table2 () =
  say "== Table 2: Relative field hotness for mcf node_t under the";
  say "==          weighting schemes, with correlation r to PBO ==";
  let prog, fb_train, fb_ref, fb_noinstr = get_mcf_feedbacks () in
  let columns =
    [ ("PBO", field_hotness prog W.PBO (Some fb_train));
      ("PPBO", field_hotness prog W.PPBO (Some fb_ref));
      ("SPBO", field_hotness prog W.SPBO None);
      ("ISPBO", field_hotness prog W.ISPBO None);
      ("ISPBO.NO", field_hotness prog W.ISPBO_NO None);
      ("ISPBO.W", field_hotness prog W.ISPBO_W None);
      ("DMISS", field_dcache_metric prog fb_train ~latency:false);
      ("DLAT", field_dcache_metric prog fb_train ~latency:true);
      ("DMISS.NO", field_dcache_metric prog fb_noinstr ~latency:false) ]
  in
  let decl = Structs.find prog.Ir.structs "node" in
  let t =
    Table.create
      (("Field", Table.Left)
      :: List.map (fun (n, _) -> (n, Table.Right)) columns)
  in
  Array.iteri
    (fun fi (f : Structs.field) ->
      Table.add_row t
        (f.name
        :: List.map
             (fun (_, col) ->
               if fi < Array.length col then Table.fpct col.(fi) else "-")
             columns))
    decl.fields;
  Table.add_sep t;
  let baseline = List.assoc "PBO" columns in
  let hottest = Stats.argmax baseline in
  (* a zero-variance column has no defined correlation: render "-"
     rather than a fake 0.000 *)
  let fcorr = function
    | Some r -> Printf.sprintf "%.3f" r
    | None -> "-"
  in
  let corr col = fcorr (Stats.correlation baseline col) in
  let corr' col = fcorr (Stats.correlation_excluding hottest baseline col) in
  Table.add_row t
    ("Correlation r" :: List.map (fun (_, col) -> corr col) columns);
  Table.add_row t
    ("Correlation r'" :: List.map (fun (_, col) -> corr' col) columns);
  print_string (Table.render t);
  say "(r' disregards the PBO-hottest field, %s; paper: potential)"
    decl.fields.(hottest).name;
  say ""

(* ------------------------------------------------------------------ *)
(* Table 3: transformed types and performance impact                   *)
(* ------------------------------------------------------------------ *)

let table3 run roster =
  say "== Table 3: Transformable/transformed types and performance ==";
  print_string (Engine.table3 run ~roster);
  say "";
  say "(performance = speedup (cycles_before/cycles_after - 1);";
  say " the simulator over-rewards splitting relative to Itanium hardware —";
  say " see EXPERIMENTS.md for the shape comparison)";
  say ""

(* ------------------------------------------------------------------ *)
(* pool: recursive-shape survey and index-linked pool measurement      *)
(* ------------------------------------------------------------------ *)

let pool run roster =
  say "== Pool: index-linked pools for shape-proven recursive types ==";
  print_string (Engine.pool_table run ~roster);
  say "";
  say "(one row per self-referential record; poolable ones are rewritten,";
  say " oracle-validated and measured, refuted ones show the witness)";
  say ""

(* ------------------------------------------------------------------ *)
(* Figure 1: layouts before/after splitting and peeling                *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  say "== Figure 1: an array of record types (a), after splitting (b),";
  say "==           and after peeling (c) ==";
  let src =
    "struct rec { long hot1; double cold1; long hot2; double cold2; };\n\
     struct rec *arr;\n\
     long n;\n\
     long use_hot() { long i; long s = 0;\n\
     for (i = 0; i < n; i++) { s = s + arr[i].hot1 + arr[i].hot2; }\n\
     return s; }\n\
     double use_cold() { long i; double s = 0.0;\n\
     for (i = 0; i < n; i = i + 64) { s = s + arr[i].cold1 + arr[i].cold2; }\n\
     return s; }\n\
     int main() { long it; long s = 0; double c = 0.0; n = 4096;\n\
     arr = (struct rec*)malloc(n * sizeof(struct rec));\n\
     for (it = 0; it < n; it++) { arr[it].hot1 = it; arr[it].hot2 = 2*it;\n\
     arr[it].cold1 = it * 0.5; arr[it].cold2 = it * 0.25; }\n\
     for (it = 0; it < 200; it++) { s = s + use_hot();\n\
     if (it % 50 == 0) { c = c + use_cold(); } }\n\
     printf(\"%ld %g\\n\", s, c); return 0; }\n"
  in
  let show prog label =
    say "--- %s ---" label;
    let layout = Layout.create prog.Ir.structs in
    List.iter
      (fun name -> print_string (Layout.describe layout name))
      (Structs.names prog.Ir.structs)
  in
  let prog = D.compile src in
  show prog "(a) original array of structures";
  let split_prog = Ircopy.copy_program prog in
  T.split split_prog
    { T.s_typ = "rec"; s_hot = [ 0; 2 ]; s_cold = [ 1; 3 ]; s_dead = [] };
  show split_prog "(b) after structure splitting (link pointer inserted)";
  let r1 = Slo_vm.Interp.run_program prog in
  let r2 = Slo_vm.Interp.run_program split_prog in
  say "outputs match after splitting: %b" (r1.output = r2.output);
  (* peeling needs the anchor-global form, which this program has *)
  let peel_prog = Ircopy.copy_program prog in
  T.peel peel_prog
    { T.p_typ = "rec"; p_live = [ 0; 1; 2; 3 ]; p_dead = [];
      p_globals = [ "arr" ] };
  show peel_prog "(c) after structure peeling (one array per field)";
  let r3 = Slo_vm.Interp.run_program peel_prog in
  say "outputs match after peeling:   %b" (r1.output = r3.output);
  say ""

(* ------------------------------------------------------------------ *)
(* Figure 2: the advisory tool's output                                *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  say "== Figure 2: the advisory tool's output (mcf node_t) ==";
  let prog, fb_train, _, _ = get_mcf_feedbacks () in
  let leg, aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some fb_train) in
  let decisions = H.decide prog leg aff ~scheme:W.PBO in
  let matched = Matching.apply prog fb_train in
  let adv =
    Adv.build prog leg aff ~decisions ~dcache:(Some matched.instr_dcache)
  in
  print_string (Adv.report ~only:[ "node" ] adv);
  (match Adv.vcg adv "node" with
  | Some vcg ->
    let dir = "_artifacts" in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out (Filename.concat dir "node.vcg") in
    output_string oc vcg;
    close_out oc;
    say "(VCG control file written to _artifacts/node.vcg)"
  | None -> ());
  say ""

(* ------------------------------------------------------------------ *)
(* Ablation: the splitting observation of section 2.4                  *)
(* ------------------------------------------------------------------ *)

let ablation () =
  say "== Ablation (2.4): 'splitting out hot fields hurts' — forcing";
  say "==  time (paper: -9%%) and time+mark (paper: -35%%) out of node ==";
  let e = Suite.find "181.mcf" in
  let prog = compile e in
  let fb, _ = Engine.train_profile e prog in
  let leg, aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some fb) in
  let decisions = H.decide prog leg aff ~scheme:W.PBO in
  let base_plan =
    match
      List.find_map
        (fun (d : H.decision) ->
          match d.d_plan with
          | Some (H.Split s) when String.equal s.s_typ "node" -> Some s
          | _ -> None)
        decisions
    with
    | Some s -> s
    | None -> failwith "expected a split plan for node"
  in
  let fidx name =
    match Structs.field_index prog.Ir.structs "node" name with
    | Some i -> i
    | None -> failwith ("no field " ^ name)
  in
  let before = D.measure ~args:e.train_args prog in
  let run_plan label (plan : T.split_spec) =
    let p = D.transform_with_plans prog [ H.Split plan ] in
    let after = D.measure ~args:e.train_args p in
    if before.m_result.output <> after.m_result.output then
      say "!! OUTPUT MISMATCH in ablation %s" label;
    say "  %-28s %+6.1f%%  (cycles %d -> %d)" label
      (D.speedup_pct ~before ~after)
      before.m_cycles after.m_cycles
  in
  run_plan "framework plan" base_plan;
  let force extra =
    {
      base_plan with
      T.s_hot = List.filter (fun f -> not (List.mem f extra)) base_plan.s_hot;
      s_cold = base_plan.s_cold @ extra;
    }
  in
  run_plan "also split out 'time'" (force [ fidx "time" ]);
  run_plan "also split out 'time'+'mark'" (force [ fidx "time"; fidx "mark" ]);
  say ""

(* ------------------------------------------------------------------ *)
(* Case studies of section 3.4                                         *)
(* ------------------------------------------------------------------ *)

let casestudies () =
  say "== Case studies (3.4): SPEC2006 sketches ==";
  (* (a) hot-field grouping guided by the advisor *)
  let e = Suite.find "spec2006.hotgroup" in
  let prog = compile e in
  let fb, _ = Collect.collect ~args:e.train_args prog in
  let leg, aff = D.analyze prog ~scheme:W.PBO ~feedback:(Some fb) in
  let g = Option.get (A.graph aff "bigobj") in
  let rel = A.relative_hotness g in
  let decl = Structs.find prog.Ir.structs "bigobj" in
  let hot =
    List.filter (fun fi -> rel.(fi) >= 50.0)
      (List.init (Array.length decl.fields) Fun.id)
  in
  say "  advisor-identified hot fields of bigobj: %s (paper: 4 hot fields)"
    (String.concat ", "
       (List.map (fun fi -> decl.fields.(fi).Structs.name) hot));
  say "  automatic transform: %s (blocked, as in the paper)"
    (match
       (List.find
          (fun (d : H.decision) -> String.equal d.d_typ "bigobj")
          (H.decide prog leg aff ~scheme:W.PBO))
       .d_plan
     with
    | Some _ -> "planned"
    | None -> "none");
  (* apply the advice by hand: group the hot four up front *)
  let cold =
    List.filter (fun fi -> not (List.mem fi hot))
      (List.init (Array.length decl.fields) Fun.id)
  in
  let regrouped = Ircopy.copy_program prog in
  T.rebuild regrouped
    { T.r_typ = "bigobj"; r_order = hot @ cold; r_dead = [] };
  let before = D.measure ~args:e.ref_args prog in
  let after = D.measure ~args:e.ref_args regrouped in
  if before.m_result.output <> after.m_result.output then
    say "!! OUTPUT MISMATCH in hot-group case study";
  say "  manual hot-field grouping: %+.1f%% (paper: +2.5%%)"
    (D.speedup_pct ~before ~after);
  (* (b) the two-field peeling case *)
  let e2 = Suite.find "spec2006.peel2" in
  let prog2 = compile e2 in
  let fb2, _ = Collect.collect ~args:e2.train_args prog2 in
  let ev = D.evaluate ~args:e2.ref_args ~scheme:W.PBO ~feedback:(Some fb2) prog2 in
  say "  two-field record peeling:  %+.1f%% (paper: ~+40%%) [%s]"
    ev.e_speedup_pct
    (String.concat "; "
       (List.filter_map
          (fun (d : H.decision) ->
            Option.map H.plan_summary d.d_plan)
          ev.e_decisions));
  say ""

(* ------------------------------------------------------------------ *)
(* Compile-time overhead (2.5) and Bechamel phase timings              *)
(* ------------------------------------------------------------------ *)

let time_it f =
  let t0 = Slo_util.Clock.now_ns () in
  let r = f () in
  (r, Slo_util.Clock.elapsed_ms ~since:t0 /. 1000.0)

let overhead () =
  say "== Compile-time overhead (2.5): layout analysis vs base compile ==";
  say "   (paper: FE ~2.5%%, IPA < 4%%, BE ~1%%)";
  let t =
    Table.create
      [ ("Benchmark", Table.Left); ("compile[ms]", Table.Right);
        ("FE+IPA[ms]", Table.Right); ("BE[ms]", Table.Right);
        ("FE+IPA ovh", Table.Right); ("BE ovh", Table.Right) ]
  in
  List.iter
    (fun (e : Suite.entry) ->
      let (prog : Ir.program), t_compile = time_it (fun () -> D.compile e.source) in
      let (leg, aff), t_analysis =
        time_it (fun () -> D.analyze prog ~scheme:W.ISPBO ~feedback:None)
      in
      let decisions = H.decide prog leg aff ~scheme:W.ISPBO in
      let plans = H.plans decisions in
      let _, t_be = time_it (fun () -> D.transform_with_plans prog plans) in
      Table.add_row t
        [ e.name;
          Printf.sprintf "%.1f" (t_compile *. 1000.0);
          Printf.sprintf "%.1f" (t_analysis *. 1000.0);
          Printf.sprintf "%.1f" (t_be *. 1000.0);
          Printf.sprintf "%.1f%%" (100.0 *. t_analysis /. t_compile);
          Printf.sprintf "%.1f%%" (100.0 *. t_be /. t_compile) ])
    Suite.roster;
  print_string (Table.render t);
  say ""

let timings () =
  say "== Bechamel micro-timings of the analysis phases (mcf) ==";
  let e = Suite.find "181.mcf" in
  let prog = compile e in
  let open Bechamel in
  let tests =
    [ Test.make ~name:"table1:legality"
        (Staged.stage (fun () -> ignore (L.analyze prog)));
      Test.make ~name:"table2:affinity+ISPBO"
        (Staged.stage (fun () ->
             let bw = W.block_weights prog W.ISPBO ~feedback:None in
             ignore (A.analyze prog bw)));
      Test.make ~name:"table3:plan+transform"
        (Staged.stage (fun () ->
             let leg, aff = D.analyze prog ~scheme:W.ISPBO ~feedback:None in
             let plans = H.plans (H.decide prog leg aff ~scheme:W.ISPBO) in
             ignore (D.transform_with_plans prog plans)));
      Test.make ~name:"pointsto"
        (Staged.stage (fun () -> ignore (Slo_pointsto.Pointsto.analyze prog)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
            say "  %-28s %10.1f us/run" name (est /. 1000.0)
          | Some _ | None -> say "  %-28s (no estimate)" name)
        results)
    tests;
  say ""

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: main.exe [TARGET...] [--jobs N|-j N] [--only NAME]\n\
     \       [--backend walk|closure|superblock]\n\
     \       [--fidelity exact|sampled|sampled:W,S[,K]] [--out FILE]\n\
     targets: table1 table2 table3 pool figure1 figure2 ablation overhead\n\
     \         casestudies timings";
  exit 2

let () =
  let jobs = ref 1 in
  let only = ref [] in
  let backend = ref Slo_vm.Backend.default in
  let fidelity = ref Slo_cachesim.Sampled.Exact in
  let out = ref (Filename.concat "_artifacts" "BENCH.json") in
  let targets = ref [] in
  let rec parse = function
    | [] -> ()
    | ("--jobs" | "-j") :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> jobs := n; parse rest
      | _ ->
        Printf.eprintf "bad --jobs value %S\n" v;
        exit 2)
    | [ "--jobs" ] | [ "-j" ] | [ "--only" ] | [ "--out" ] | [ "--backend" ]
    | [ "--fidelity" ] ->
      usage ()
    | "--backend" :: v :: rest -> (
      match Slo_vm.Backend.of_string v with
      | Some b -> backend := b; parse rest
      | None ->
        Printf.eprintf "bad --backend value %S (walk|closure|superblock)\n" v;
        exit 2)
    | "--fidelity" :: v :: rest -> (
      match Slo_cachesim.Sampled.fidelity_of_string v with
      | Ok f -> fidelity := f; parse rest
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2)
    | "--only" :: v :: rest -> only := v :: !only; parse rest
    | "--out" :: v :: rest -> out := v; parse rest
    | t :: rest ->
      (match t with
      | "table1" | "table2" | "table3" | "pool" | "figure1" | "figure2"
      | "ablation" | "casestudies" | "overhead" | "timings" ->
        targets := t :: !targets
      | other ->
        Printf.eprintf "unknown target %S\n" other;
        usage ());
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roster =
    match !only with
    | [] -> Suite.roster
    | names ->
      List.iter
        (fun n ->
          if not (List.exists (fun (e : Suite.entry) -> e.name = n) Suite.roster)
          then begin
            Printf.eprintf "unknown --only benchmark %S\n" n;
            exit 2
          end)
        names;
      List.filter (fun (e : Suite.entry) -> List.mem e.name names) Suite.roster
  in
  let run =
    Engine.create_run ~backend:!backend ~fidelity:!fidelity ~jobs:!jobs ()
  in
  let dispatch = function
    | "table1" -> table1 run roster
    | "table2" -> table2 ()
    | "table3" -> table3 run roster
    | "pool" -> pool run roster
    | "figure1" -> figure1 ()
    | "figure2" -> figure2 ()
    | "ablation" -> ablation ()
    | "casestudies" -> casestudies ()
    | "overhead" -> overhead ()
    | "timings" -> timings ()
    | _ -> assert false
  in
  let targets =
    match List.rev !targets with
    | [] ->
      [ "table1"; "table2"; "figure1"; "figure2"; "table3"; "pool";
        "ablation"; "casestudies"; "overhead"; "timings" ]
    | ts -> ts
  in
  List.iter dispatch targets;
  Engine.write_json run ~path:!out;
  say "(machine-readable results written to %s)" !out;
  Engine.finish run
