(* loadgen — a closed-loop multi-client load generator for the
   layout-advice daemon.

   Each client thread holds one connection and sends the request list
   round-robin, waiting for every reply before sending the next (closed
   loop: concurrency == --clients). The request list is the benchmark
   roster, so repeated rounds against a warm daemon measure the
   content-addressed cache, not the compiler. Results go to
   _artifacts/SERVE.json so the serving path gets a perf trajectory like
   BENCH.json.

   With no --socket the daemon is spawned in-process on a private socket
   and shut down at the end, which is what `make serve-smoke` and CI
   use; --socket drives an externally managed daemon instead. *)

module Json = Slo_util.Json
module Histogram = Slo_util.Histogram
module P = Slo_server.Protocol
module Client = Slo_server.Client
module Server = Slo_server.Server
module Suite = Slo_suite.Suite

let socket = ref ""
let clients = ref 8
let rounds = ref 3
let kind = ref "advise"
let jobs = ref 0
let cache_mb = ref 64
let deadline_ms = ref 0.0
let out = ref "_artifacts/SERVE.json"
let check_hit_rate = ref (-1.0)
let verbose = ref false

let spec =
  [
    ("--socket", Arg.Set_string socket,
     "PATH  drive an already-running daemon (default: spawn in-process)");
    ("--clients", Arg.Set_int clients, "N  concurrent closed-loop clients (8)");
    ("--rounds", Arg.Set_int rounds,
     "N  times each client replays the request list (3)");
    ("--kind", Arg.Symbol ([ "advise"; "bench"; "mixed" ], fun s -> kind := s),
     "  request mix: advise | bench | mixed (advise)");
    ("--jobs", Arg.Set_int jobs,
     "N  worker domains for a spawned daemon (0 = auto)");
    ("--cache-mb", Arg.Set_int cache_mb,
     "MB  cache budget for a spawned daemon (64)");
    ("--deadline-ms", Arg.Set_float deadline_ms,
     "MS  per-request deadline (0 = none)");
    ("--out", Arg.Set_string out, "PATH  result artifact (_artifacts/SERVE.json)");
    ("--check-hit-rate", Arg.Set_float check_hit_rate,
     "PCT  exit non-zero if the measured result-cache hit rate is lower");
    ("--verbose", Arg.Set verbose, "  daemon + progress logs on stderr");
  ]

let usage = "loadgen [options]  (see bench/loadgen.ml)"

let log fmt =
  Printf.ksprintf (fun s -> if !verbose then Printf.eprintf "loadgen: %s\n%!" s) fmt

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if String.equal line "" then "unknown" else line
  with _ -> "unknown"

(* the request list: one advise and/or bench per roster entry *)
let requests () =
  let deadline =
    if !deadline_ms > 0.0 then Some !deadline_ms else None
  in
  let advise (e : Suite.entry) =
    P.Advise
      { src = e.source; scheme = Some "ispbo"; args = []; deadline_ms = deadline }
  in
  let bench (e : Suite.entry) =
    P.Bench
      {
        src = e.source;
        scheme = Some "spbo";
        backend = None;
        args = e.train_args;
        deadline_ms = deadline;
      }
  in
  match !kind with
  | "advise" -> List.map advise Suite.roster
  | "bench" -> List.map bench Suite.roster
  | _ ->
    (* mixed: advice across the roster plus one measured bench *)
    List.map advise Suite.roster @ [ bench (List.hd Suite.roster) ]

let fetch_stats conn =
  match Client.rpc conn P.Stats with
  | P.R_stats s -> s
  | _ -> failwith "stats request did not return stats"

type client_result = { hist : Histogram.t; mutable errors : int }

let client_thread ~socket ~reqs ~rounds r =
  let conn = Client.connect ~retry_for_s:5.0 ~socket () in
  for _ = 1 to rounds do
    List.iter
      (fun req ->
        let t0 = Unix.gettimeofday () in
        (match Client.rpc conn req with
        | P.R_error _ -> r.errors <- r.errors + 1
        | _ -> ());
        Histogram.record r.hist ((Unix.gettimeofday () -. t0) *. 1000.0))
      reqs
  done;
  Client.close conn

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !clients < 1 || !rounds < 1 then begin
    prerr_endline "loadgen: --clients and --rounds must be >= 1";
    exit 2
  end;
  let spawned = String.equal !socket "" in
  let socket_path =
    if spawned then
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "slo-loadgen-%d.sock" (Unix.getpid ()))
    else !socket
  in
  let server_jobs =
    if !jobs > 0 then !jobs else Slo_exec.Pool.default_jobs ()
  in
  let server_thread =
    if not spawned then None
    else begin
      log "spawning in-process daemon on %s" socket_path;
      let cfg =
        { (Server.default_config ~socket_path) with
          jobs = server_jobs;
          cache_mb = !cache_mb;
          handle_sigterm = false;
          log = (fun s -> log "daemon: %s" s);
        }
      in
      Some (Thread.create Server.run cfg)
    end
  in
  let reqs = requests () in
  (* warmup: populate the cache once so the measured phase exercises the
     content-addressed hit path, which is the serving steady state *)
  log "warmup: %d unique requests" (List.length reqs);
  let warm = Client.connect ~retry_for_s:10.0 ~socket:socket_path () in
  let warm_errors =
    List.fold_left
      (fun acc req ->
        match Client.rpc warm req with
        | P.R_error { code = P.Timeout; _ } ->
          (* the computation continues server-side; await it via a
             repeat request below *)
          acc + 1
        | P.R_error { code; message } ->
          Printf.eprintf "loadgen: warmup error [%s]: %s\n"
            (P.error_code_name code) message;
          acc + 1
        | _ -> acc)
      0 reqs
  in
  let s0 = fetch_stats warm in
  log "measuring: %d clients x %d rounds x %d requests" !clients !rounds
    (List.length reqs);
  let t0 = Unix.gettimeofday () in
  let results =
    List.init !clients (fun _ -> { hist = Histogram.create (); errors = 0 })
  in
  let threads =
    List.map
      (fun r ->
        Thread.create (client_thread ~socket:socket_path ~reqs ~rounds:!rounds) r)
      results
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let s1 = fetch_stats warm in
  Client.close warm;
  (* merge per-client latency histograms *)
  let hist = Histogram.create () in
  let errors =
    List.fold_left
      (fun acc r ->
        Histogram.merge hist r.hist;
        acc + r.errors)
      0 results
  in
  let total = Histogram.count hist in
  let throughput = if wall_s > 0.0 then float total /. wall_s else 0.0 in
  let d_hits = s1.P.s_result_hits - s0.P.s_result_hits in
  let d_misses = s1.P.s_result_misses - s0.P.s_result_misses in
  let hit_rate =
    if d_hits + d_misses = 0 then 0.0
    else 100.0 *. float d_hits /. float (d_hits + d_misses)
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ("tool", Json.String "slo-loadgen");
        ("git_rev", Json.String (git_rev ()));
        ("kind", Json.String !kind);
        ("clients", Json.Int !clients);
        ("rounds", Json.Int !rounds);
        ("unique_requests", Json.Int (List.length reqs));
        ("total_requests", Json.Int total);
        ("errors", Json.Int errors);
        ("warmup_errors", Json.Int warm_errors);
        ("duration_s", Json.Float wall_s);
        ("throughput_rps", Json.Float throughput);
        ( "latency_ms",
          Json.Obj
            [
              ("count", Json.Int total);
              ("p50", Json.Float (Histogram.percentile hist 50.0));
              ("p95", Json.Float (Histogram.percentile hist 95.0));
              ("p99", Json.Float (Histogram.percentile hist 99.0));
              ("max", Json.Float (Histogram.max_ms hist));
              ("mean", Json.Float (Histogram.mean_ms hist));
            ] );
        ( "cache",
          Json.Obj
            [
              ("result_hits", Json.Int d_hits);
              ("result_misses", Json.Int d_misses);
              ("hit_rate_pct", Json.Float hit_rate);
              ("ir_hits", Json.Int (s1.P.s_ir_hits - s0.P.s_ir_hits));
              ("ir_misses", Json.Int (s1.P.s_ir_misses - s0.P.s_ir_misses));
            ] );
        ( "server",
          Json.Obj
            [
              ("jobs", Json.Int server_jobs);
              ("spawned", Json.Bool spawned);
            ] );
      ]
  in
  let dir = Filename.dirname !out in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "loadgen: %d requests in %.2fs (%.1f req/s), p50=%.2fms p95=%.2fms \
     p99=%.2fms, result-cache hit rate %.1f%%, %d errors -> %s\n"
    total wall_s throughput
    (Histogram.percentile hist 50.0)
    (Histogram.percentile hist 95.0)
    (Histogram.percentile hist 99.0)
    hit_rate errors !out;
  (if spawned then
     let conn = Client.connect ~retry_for_s:5.0 ~socket:socket_path () in
     ignore (Client.rpc conn P.Shutdown);
     Client.close conn;
     Option.iter Thread.join server_thread);
  let failed_hit_rate =
    !check_hit_rate >= 0.0 && hit_rate < !check_hit_rate
  in
  if failed_hit_rate then
    Printf.eprintf "loadgen: FAIL hit rate %.1f%% below required %.1f%%\n"
      hit_rate !check_hit_rate;
  if errors > 0 then Printf.eprintf "loadgen: %d request errors\n" errors;
  if failed_hit_rate || errors > 0 then exit 1
