(* loadgen — closed- and open-loop load generators for the
   layout-advice daemon.

   Closed loop (--mode closed, the default): each client thread holds
   one connection and sends the request list round-robin, waiting for
   every reply before sending the next (concurrency == --clients).
   Repeated rounds against a warm daemon measure the content-addressed
   cache, not the compiler.

   Open loop (--mode open): each connection gets a sender and a
   receiver thread. The sender schedules Poisson arrivals at
   rate/--clients per connection and pipelines them with request ids,
   never waiting for replies; the receiver correlates replies by id
   with a prefix scan (no JSON parse) and measures latency from the
   {e scheduled} arrival time, so queueing delay from a saturated
   daemon — including sends that left late because the socket
   back-pressured — is charged to the result instead of silently
   stretching the schedule (no coordinated omission). --rates sweeps a
   list of offered loads into one latency-vs-load curve.

   Results go to _artifacts/SERVE.json (schema_version 2) so the
   serving path gets a perf trajectory like BENCH.json.

   With no --socket the daemon is spawned in-process on a private
   socket (plus a loopback TCP listener under --tcp) and shut down at
   the end, which is what `make serve-smoke` / `make serve-load` and CI
   use; --socket PATH|HOST:PORT drives an externally managed daemon
   instead. *)

module Json = Slo_util.Json
module Clock = Slo_util.Clock
module Histogram = Slo_util.Histogram
module P = Slo_server.Protocol
module Codec = Slo_core.Codec
module W = Slo_profile.Weights
module Client = Slo_server.Client
module Server = Slo_server.Server
module Suite = Slo_suite.Suite

let socket = ref ""
let mode = ref "closed"
let tcp = ref false
let clients = ref 8
let rounds = ref 3
let rates = ref ""
let duration_s = ref 5.0
let kind = ref "advise"
let jobs = ref 0
let cache_mb = ref 64
let cache_dir = ref ""
let window = ref 32
let high_watermark = ref 0
let low_watermark = ref 0
let deadline_ms = ref 0.0
let out = ref "_artifacts/SERVE.json"
let check_hit_rate = ref (-1.0)
let check_p99_ms = ref (-1.0)
let check_disk_warm = ref false
let expect_shed = ref false
let verbose = ref false

let spec =
  [
    ("--socket", Arg.Set_string socket,
     "EP  drive an already-running daemon at PATH or HOST:PORT (default: \
      spawn in-process)");
    ("--mode", Arg.Symbol ([ "closed"; "open" ], fun s -> mode := s),
     "  closed loop (concurrency = --clients) or open loop (Poisson \
      arrivals at --rates) (closed)");
    ("--tcp", Arg.Set tcp,
     "  spawn the daemon with a loopback TCP listener and drive that");
    ("--clients", Arg.Set_int clients, "N  connections / client threads (8)");
    ("--rounds", Arg.Set_int rounds,
     "N  closed loop: times each client replays the request list (3)");
    ("--rates", Arg.Set_string rates,
     "R1,R2,...  open loop: offered request rates (req/s) to sweep");
    ("--duration-s", Arg.Set_float duration_s,
     "S  open loop: seconds per swept rate (5)");
    ("--kind",
     Arg.Symbol ([ "advise"; "bench"; "mixed"; "shed" ], fun s -> kind := s),
     "  request mix: advise | bench | mixed | shed (cached advise + \
      always-miss bench) (advise)");
    ("--jobs", Arg.Set_int jobs,
     "N  worker domains for a spawned daemon (0 = auto)");
    ("--cache-mb", Arg.Set_int cache_mb,
     "MB  cache budget for a spawned daemon (64)");
    ("--cache-dir", Arg.Set_string cache_dir,
     "DIR  persistent reply cache for a spawned daemon (off)");
    ("--window", Arg.Set_int window,
     "N  per-connection in-flight window of a spawned daemon (32)");
    ("--high-watermark", Arg.Set_int high_watermark,
     "N  shed threshold of a spawned daemon (0 = auto)");
    ("--low-watermark", Arg.Set_int low_watermark,
     "N  shed-stop threshold of a spawned daemon (0 = auto)");
    ("--deadline-ms", Arg.Set_float deadline_ms,
     "MS  per-request deadline (0 = none)");
    ("--out", Arg.Set_string out, "PATH  result artifact (_artifacts/SERVE.json)");
    ("--check-hit-rate", Arg.Set_float check_hit_rate,
     "PCT  exit non-zero if the measured result-cache hit rate is lower");
    ("--check-p99-ms", Arg.Set_float check_p99_ms,
     "MS  open loop: exit non-zero if p99 exceeds this at any sustained \
      rate (one achieving >= 95% of offered)");
    ("--check-disk-warm", Arg.Set check_disk_warm,
     "  exit non-zero unless warmup was served from the persistent \
      cache (a restart onto a populated --cache-dir)");
    ("--expect-shed", Arg.Set expect_shed,
     "  exit non-zero unless the daemon shed with structured overloaded \
      replies and zero transport errors");
    ("--verbose", Arg.Set verbose, "  daemon + progress logs on stderr");
  ]

let usage = "loadgen [options]  (see bench/loadgen.ml)"

let log fmt =
  Printf.ksprintf (fun s -> if !verbose then Printf.eprintf "loadgen: %s\n%!" s) fmt

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if String.equal line "" then "unknown" else line
  with _ -> "unknown"

let deadline () = if !deadline_ms > 0.0 then Some !deadline_ms else None

let advise_req (e : Suite.entry) =
  P.Advise
    { src = e.source; scheme = Some (Codec.scheme_name W.ISPBO); args = [];
      pool = false; deadline_ms = deadline () }

let bench_req ?args (e : Suite.entry) =
  P.Bench
    {
      src = e.source;
      scheme = Some (Codec.scheme_name W.SPBO);
      backend = None;
      args = Option.value ~default:e.train_args args;
      deadline_ms = deadline ();
    }

(* always-miss benches for the shed mix: a distinct source suffix =
   a distinct content digest, so each one reaches the compute pool
   while running the entry's own training input — varying the args
   instead would either break [main]'s arity (a runtime error, not a
   miss) or scale the workload without bound. povray is the cheapest
   roster bench by an order of magnitude (~80 ms); the point is to
   fill the queue, not to grind the pool. *)
let unique_benches n =
  let e = try Suite.find "povray" with Not_found -> List.hd Suite.roster in
  List.init n (fun i ->
      let e = { e with Suite.source = e.Suite.source ^ "\n// uniq " ^ string_of_int i } in
      bench_req e)

(* (warmup list, measured list): the shed mix measures requests it
   deliberately never warms *)
let requests () =
  let advises = List.map advise_req Suite.roster in
  match !kind with
  | "advise" -> (advises, advises)
  | "bench" ->
    let b = List.map (fun e -> bench_req e) Suite.roster in
    (b, b)
  | "mixed" ->
    let m = advises @ [ bench_req (List.hd Suite.roster) ] in
    (m, m)
  | _ ->
    (* shed: every 4th measured request is an uncacheable bench *)
    let benches = unique_benches 256 in
    let rec weave a b =
      match (a, b) with
      | [], rest | rest, [] -> rest
      | x :: a, y :: b -> x :: y :: weave a b
    in
    (advises, weave (advises @ advises @ advises) benches)

let serialize req = Json.to_string ~indent:false (P.json_of_request req)

let fetch_stats conn =
  match Client.rpc conn P.Stats with
  | P.R_stats s -> s
  | _ -> failwith "stats request did not return stats"

let connect ~endpoint = Client.connect ~retry_for_s:10.0 ~endpoint ()

let latency_json hist =
  Json.Obj
    [
      ("count", Json.Int (Histogram.count hist));
      ("p50", Json.Float (Histogram.percentile hist 50.0));
      ("p95", Json.Float (Histogram.percentile hist 95.0));
      ("p99", Json.Float (Histogram.percentile hist 99.0));
      ("max", Json.Float (Histogram.max_ms hist));
      ("mean", Json.Float (Histogram.mean_ms hist));
    ]

(* ------------------------------------------------------------------ *)
(* Closed loop                                                         *)
(* ------------------------------------------------------------------ *)

type closed_result = { hist : Histogram.t; mutable errors : int }

let closed_client ~endpoint ~reqs ~rounds r =
  let conn = connect ~endpoint in
  for _ = 1 to rounds do
    List.iter
      (fun req ->
        let t0 = Clock.now_ns () in
        (match Client.rpc conn req with
        | P.R_error _ -> r.errors <- r.errors + 1
        | _ -> ());
        Histogram.record r.hist (Clock.elapsed_ms ~since:t0))
      reqs
  done;
  Client.close conn

(* ------------------------------------------------------------------ *)
(* Open loop                                                           *)
(* ------------------------------------------------------------------ *)

(* Request ids live in a fixed ring: id = send index mod 16384. The
   ring bounds the schedule table and lets the request bytes for every
   (id, payload) pair be injected once up front — the sender's steady
   state is a table read and a buffered write, no per-send allocation.
   A slot is only reused 16384 sends later, far beyond the server's
   in-flight window, so a live id never collides with an outstanding
   one. *)
let ring_bits = 14

let ring = 1 lsl ring_bits

let ring_mask = ring - 1

type open_conn = {
  oc_lock : Mutex.t; (* guards sched + sent/done below *)
  sched : int64 array; (* id -> scheduled send time, ns *)
  mutable sent : int;
  mutable sender_done : bool;
  mutable marker_seen : bool; (* sentinel reply arrived *)
  mutable late : int; (* left > 1ms after schedule (backpressure) *)
  hist : Histogram.t;
  mutable received : int;
  err_counts : (string, int) Hashtbl.t; (* error code -> replies *)
  mutable transport_errors : int;
}

let oc_create () =
  {
    oc_lock = Mutex.create ();
    sched = Array.make ring 0L;
    sent = 0;
    sender_done = false;
    marker_seen = false;
    late = 0;
    hist = Histogram.create ();
    received = 0;
    err_counts = Hashtbl.create 8;
    transport_errors = 0;
  }

(* End-of-stream marker. The receiver must never block on the socket
   with nothing outstanding, or it races the sender's last send against
   its own termination check: with replies completing out of order
   there is no "last reply" to key off. So after its final request the
   sender emits one Stats probe under this id; the receiver only exits
   once it has both the marker and every counted reply, which means any
   blocking read has at least one frame still due. *)
let sentinel_id = 999_999_999

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

(* Poisson sender: the schedule is absolute, derived once from the
   rate — a slow daemon makes sends late, never sparser. Sends due
   within the same half-millisecond go out as one burst under a single
   flush: at tens of kHz a sleep + write syscall per request costs more
   than the requests. *)
let open_sender ~conn ~table ~rate ~duration st oc =
  let t_start = Clock.now_ns () in
  let horizon = Int64.of_float (duration *. 1e9) in
  let next = ref 0.0 (* scheduled offset from t_start, seconds *) in
  (* Frames batch in the out_channel between flushes; left uncapped
     they would sit there until the 64 KiB buffer spills (~40 ms of
     traffic at per-connection rates), and that hold time is measured
     latency — the schedule is the clock. 16 frames ≈ 2.5 ms of
     traffic: still one write syscall per 16 requests. *)
  let max_batch = 16 in
  let unflushed = ref 0 in
  (try
     let i = ref 0 in
     let continue = ref true in
     while !continue do
       next :=
         !next +. (-.Float.log (1.0 -. Random.State.float st 1.0) /. rate);
       let sched_ns =
         Int64.add t_start (Int64.of_float (!next *. 1e9))
       in
       if Int64.sub sched_ns t_start > horizon then continue := false
       else begin
         let wait_s = Clock.span_ms (Clock.now_ns ()) sched_ns /. 1000.0 in
         if wait_s > 0.0005 then begin
           if !unflushed > 0 then begin
             Client.flush_out conn;
             unflushed := 0
           end;
           Unix.sleepf wait_s
         end;
         let id = !i land ring_mask in
         Mutex.lock oc.oc_lock;
         oc.sched.(id) <- sched_ns;
         oc.sent <- oc.sent + 1;
         if Clock.span_ms sched_ns (Clock.now_ns ()) > 1.0 then
           oc.late <- oc.late + 1;
         Mutex.unlock oc.oc_lock;
         Client.send_raw_noflush conn table.(id);
         incr unflushed;
         if !unflushed >= max_batch then begin
           Client.flush_out conn;
           unflushed := 0;
           (* A sender catching up on a backlog never blocks, and a
              systhread that never blocks holds its domain's runtime
              lock until the 50 ms tick — several senders doing that
              back to back starve every receiver in this domain for
              hundreds of ms. One yield per batch bounds the hold. *)
           Thread.yield ()
         end;
         incr i
       end
     done;
     if !unflushed > 0 then Client.flush_out conn
   with Client.Protocol_error _ ->
     Mutex.lock oc.oc_lock;
     oc.transport_errors <- oc.transport_errors + 1;
     Mutex.unlock oc.oc_lock);
  Mutex.lock oc.oc_lock;
  oc.sender_done <- true;
  Mutex.unlock oc.oc_lock;
  (* the marker goes out after sender_done so the receiver's exit check
     sees the final [sent] once the marker reply arrives *)
  try
    Client.send_raw conn
      (P.inject_id ~id:sentinel_id
         (Json.to_string ~indent:false (P.json_of_request P.Stats)))
  with Client.Protocol_error _ ->
    Mutex.lock oc.oc_lock;
    oc.transport_errors <- oc.transport_errors + 1;
    Mutex.unlock oc.oc_lock

let open_receiver ~conn oc =
  let finished () =
    Mutex.lock oc.oc_lock;
    let f = oc.sender_done && oc.marker_seen && oc.received >= oc.sent in
    Mutex.unlock oc.oc_lock;
    f
  in
  try
    while not (finished ()) do
      let payload = Client.recv_raw conn in
      let t_now = Clock.now_ns () in
      let id, status = P.scan_reply_header payload in
      Mutex.lock oc.oc_lock;
      if id = Some sentinel_id then oc.marker_seen <- true
      else begin
        (match id with
        | Some id when id < Array.length oc.sched && oc.sched.(id) <> 0L ->
          Histogram.record oc.hist (Clock.span_ms oc.sched.(id) t_now)
        | _ -> ());
        (match status with
        | Ok () -> ()
        | Error code -> bump oc.err_counts code);
        oc.received <- oc.received + 1
      end;
      Mutex.unlock oc.oc_lock
    done
  with Client.Protocol_error _ ->
    Mutex.lock oc.oc_lock;
    oc.transport_errors <- oc.transport_errors + 1;
    Mutex.unlock oc.oc_lock

type rate_point = {
  rp_offered : float;
  rp_achieved : float;
  rp_elapsed_s : float;
  rp_sent : int;
  rp_received : int;
  rp_late : int;
  rp_hist : Histogram.t;
  rp_errors : (string * int) list;
  rp_transport_errors : int;
}

let run_rate ~endpoint ~table ~rate ~duration ~conns seed =
  let ocs = List.init conns (fun _ -> oc_create ()) in
  let handles =
    List.mapi
      (fun i oc ->
        let conn = connect ~endpoint in
        let st = Random.State.make [| seed; i; int_of_float rate |] in
        let sender =
          Thread.create
            (fun () ->
              open_sender ~conn ~table ~rate:(rate /. float conns)
                ~duration st oc)
            ()
        in
        let receiver = Thread.create (fun () -> open_receiver ~conn oc) () in
        (conn, sender, receiver))
      ocs
  in
  let t0 = Clock.now_ns () in
  List.iter
    (fun (conn, sender, receiver) ->
      Thread.join sender;
      Thread.join receiver;
      Client.close conn)
    handles;
  let elapsed_s = Clock.elapsed_ms ~since:t0 /. 1000.0 in
  let hist = Histogram.create () in
  let errs = Hashtbl.create 8 in
  let sent, received, late, transport =
    List.fold_left
      (fun (s, r, l, t) oc ->
        Histogram.merge hist oc.hist;
        Hashtbl.iter
          (fun k v ->
            Hashtbl.replace errs k
              (v + Option.value ~default:0 (Hashtbl.find_opt errs k)))
          oc.err_counts;
        (s + oc.sent, r + oc.received, l + oc.late, t + oc.transport_errors))
      (0, 0, 0, 0) ocs
  in
  {
    rp_offered = rate;
    rp_achieved = (if elapsed_s > 0.0 then float received /. elapsed_s else 0.0);
    rp_elapsed_s = elapsed_s;
    rp_sent = sent;
    rp_received = received;
    rp_late = late;
    rp_hist = hist;
    rp_errors =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) errs []);
    rp_transport_errors = transport;
  }

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !clients < 1 || !rounds < 1 || !duration_s <= 0.0 then begin
    prerr_endline "loadgen: --clients, --rounds and --duration-s must be > 0";
    exit 2
  end;
  let rate_list =
    if String.equal !rates "" then []
    else
      List.map
        (fun s ->
          match float_of_string_opt (String.trim s) with
          | Some r when r > 0.0 -> r
          | _ ->
            prerr_endline ("loadgen: bad rate " ^ s);
            exit 2)
        (String.split_on_char ',' !rates)
  in
  if !mode = "open" && rate_list = [] then begin
    prerr_endline "loadgen: --mode open needs --rates";
    exit 2
  end;
  let spawned = String.equal !socket "" in
  let socket_path =
    if spawned then
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "slo-loadgen-%d.sock" (Unix.getpid ()))
    else !socket
  in
  (* a spawned TCP daemon listens on a loopback port probed free here;
     the bind-close-reuse window is ours alone on a CI box *)
  let tcp_port =
    if spawned && !tcp then begin
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      Unix.close fd;
      Some port
    end
    else None
  in
  let endpoint =
    match tcp_port with
    | Some port -> `Tcp ("127.0.0.1", port)
    | None -> if spawned then `Unix socket_path else Client.endpoint_of_string !socket
  in
  let transport =
    match endpoint with `Tcp _ -> "tcp" | `Unix _ -> "unix"
  in
  let server_jobs =
    if !jobs > 0 then !jobs else Slo_exec.Pool.default_jobs ()
  in
  let server_thread =
    if not spawned then None
    else begin
      log "spawning in-process daemon on %s%s" socket_path
        (match tcp_port with
        | Some p -> Printf.sprintf " + 127.0.0.1:%d" p
        | None -> "");
      let cfg =
        { (Server.default_config ~socket_path) with
          jobs = server_jobs;
          listen = Option.map (fun p -> ("127.0.0.1", p)) tcp_port;
          window = !window;
          cache_mb = !cache_mb;
          cache_dir = (if !cache_dir = "" then None else Some !cache_dir);
          max_conns = max 64 (2 * !clients);
          high_watermark = !high_watermark;
          low_watermark = !low_watermark;
          handle_sigterm = false;
          log = (fun s -> log "daemon: %s" s);
        }
      in
      Some (Thread.create Server.run cfg)
    end
  in
  let warm_reqs, measured_reqs = requests () in
  (* warmup: populate the cache once so the measured phase exercises the
     content-addressed hit path, which is the serving steady state *)
  log "warmup: %d unique requests" (List.length warm_reqs);
  let warm = connect ~endpoint in
  let warm_errors =
    List.fold_left
      (fun acc req ->
        match Client.rpc warm req with
        | P.R_error { code = P.Timeout; _ } ->
          (* the computation continues server-side; await it via a
             repeat request below *)
          acc + 1
        | P.R_error { code; message } ->
          Printf.eprintf "loadgen: warmup error [%s]: %s\n"
            (P.error_code_name code) message;
          acc + 1
        | _ -> acc)
      0 warm_reqs
  in
  let s0 = fetch_stats warm in
  let hist = Histogram.create () in
  let errors = ref 0 in
  let curve = ref [] in
  let wall_s, total, throughput =
    match !mode with
    | "open" ->
      let payloads = Array.of_list (List.map serialize measured_reqs) in
      let n_payloads = Array.length payloads in
      let table =
        Array.init ring (fun k -> P.inject_id ~id:k payloads.(k mod n_payloads))
      in
      let t0 = Clock.now_ns () in
      List.iter
        (fun rate ->
          log "open loop: %.0f req/s for %.1fs over %d conns" rate !duration_s
            !clients;
          let rp =
            run_rate ~endpoint ~table ~rate ~duration:!duration_s
              ~conns:!clients 0x5105
          in
          Histogram.merge hist rp.rp_hist;
          errors :=
            !errors
            + List.fold_left (fun a (_, n) -> a + n) 0 rp.rp_errors
            + rp.rp_transport_errors;
          log
            "  offered %.0f achieved %.0f req/s, p99=%.2fms, %d/%d late, \
             errors=[%s]%s"
            rp.rp_offered rp.rp_achieved
            (Histogram.percentile rp.rp_hist 99.0)
            rp.rp_late rp.rp_sent
            (String.concat " "
               (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) rp.rp_errors))
            (if rp.rp_transport_errors > 0 then
               Printf.sprintf " transport=%d" rp.rp_transport_errors
             else "");
          curve := rp :: !curve)
        rate_list;
      let wall_s = Clock.elapsed_ms ~since:t0 /. 1000.0 in
      let total = Histogram.count hist in
      let best =
        List.fold_left (fun a rp -> Float.max a rp.rp_achieved) 0.0 !curve
      in
      (wall_s, total, best)
    | _ ->
      log "measuring: %d clients x %d rounds x %d requests" !clients !rounds
        (List.length measured_reqs);
      let t0 = Clock.now_ns () in
      let results : closed_result list =
        List.init !clients (fun _ -> { hist = Histogram.create (); errors = 0 })
      in
      let threads =
        List.map
          (fun r ->
            Thread.create
              (closed_client ~endpoint ~reqs:measured_reqs ~rounds:!rounds)
              r)
          results
      in
      List.iter Thread.join threads;
      let wall_s = Clock.elapsed_ms ~since:t0 /. 1000.0 in
      List.iter
        (fun (r : closed_result) ->
          Histogram.merge hist r.hist;
          errors := !errors + r.errors)
        results;
      let total = Histogram.count hist in
      (wall_s, total, if wall_s > 0.0 then float total /. wall_s else 0.0)
  in
  let curve = List.rev !curve in
  let errors = !errors in
  let s1 = fetch_stats warm in
  Client.close warm;
  let d_hits = s1.P.s_result_hits - s0.P.s_result_hits in
  let d_misses = s1.P.s_result_misses - s0.P.s_result_misses in
  let hit_rate =
    if d_hits + d_misses = 0 then 0.0
    else 100.0 *. float d_hits /. float (d_hits + d_misses)
  in
  let shed_replies =
    List.fold_left
      (fun acc rp ->
        acc
        + List.fold_left
            (fun a (code, n) -> if code = "overloaded" then a + n else a)
            0 rp.rp_errors)
      0 curve
  in
  let transport_errors =
    List.fold_left (fun a rp -> a + rp.rp_transport_errors) 0 curve
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 2);
        ("tool", Json.String "slo-loadgen");
        ("git_rev", Json.String (git_rev ()));
        ("mode", Json.String !mode);
        ("transport", Json.String transport);
        ("kind", Json.String !kind);
        ("clients", Json.Int !clients);
        ("rounds", Json.Int !rounds);
        ("unique_requests", Json.Int (List.length measured_reqs));
        ("total_requests", Json.Int total);
        ("errors", Json.Int errors);
        ("warmup_errors", Json.Int warm_errors);
        ("duration_s", Json.Float wall_s);
        ("throughput_rps", Json.Float throughput);
        ("latency_ms", latency_json hist);
        ( "open_loop",
          Json.List
            (List.map
               (fun rp ->
                 Json.Obj
                   [
                     ("offered_rps", Json.Float rp.rp_offered);
                     ("achieved_rps", Json.Float rp.rp_achieved);
                     ("duration_s", Json.Float rp.rp_elapsed_s);
                     ("sent", Json.Int rp.rp_sent);
                     ("received", Json.Int rp.rp_received);
                     ("late_sends", Json.Int rp.rp_late);
                     ( "late_pct",
                       Json.Float
                         (if rp.rp_sent = 0 then 0.0
                          else 100.0 *. float rp.rp_late /. float rp.rp_sent) );
                     ( "errors",
                       Json.Obj
                         (List.map (fun (k, v) -> (k, Json.Int v)) rp.rp_errors)
                     );
                     ("transport_errors", Json.Int rp.rp_transport_errors);
                     ("latency_ms", latency_json rp.rp_hist);
                   ])
               curve) );
        ( "cache",
          Json.Obj
            [
              ("result_hits", Json.Int d_hits);
              ("result_misses", Json.Int d_misses);
              ("hit_rate_pct", Json.Float hit_rate);
              ("ir_hits", Json.Int (s1.P.s_ir_hits - s0.P.s_ir_hits));
              ("ir_misses", Json.Int (s1.P.s_ir_misses - s0.P.s_ir_misses));
              ("disk_hits", Json.Int (s1.P.s_disk_hits - s0.P.s_disk_hits));
              ("disk_misses", Json.Int (s1.P.s_disk_misses - s0.P.s_disk_misses));
              (* absolute count at the end of warmup: a daemon
                 restarted onto a populated --cache-dir serves the
                 warmup itself from disk, which the measured-phase
                 deltas above cannot see *)
              ("disk_hits_warmup", Json.Int s0.P.s_disk_hits);
            ] );
        ( "server",
          Json.Obj
            [
              ("jobs", Json.Int server_jobs);
              ("spawned", Json.Bool spawned);
              (* the daemon's own service-time histogram (read -> reply
                 enqueued), next to the client-observed schedule-based
                 numbers above: the gap between the two is queueing —
                 client buffering, socket backlog and scheduler delay *)
              ( "latency_ms",
                Json.Obj
                  [
                    ("count", Json.Int s1.P.s_latency.P.l_count);
                    ("p50", Json.Float s1.P.s_latency.P.l_p50_ms);
                    ("p95", Json.Float s1.P.s_latency.P.l_p95_ms);
                    ("p99", Json.Float s1.P.s_latency.P.l_p99_ms);
                    ("max", Json.Float s1.P.s_latency.P.l_max_ms);
                  ] );
            ] );
      ]
  in
  let dir = Filename.dirname !out in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "loadgen: %s/%s: %d requests in %.2fs (%.1f req/s), p50=%.2fms \
     p95=%.2fms p99=%.2fms, result-cache hit rate %.1f%%, %d errors -> %s\n"
    !mode transport total wall_s throughput
    (Histogram.percentile hist 50.0)
    (Histogram.percentile hist 95.0)
    (Histogram.percentile hist 99.0)
    hit_rate errors !out;
  (if spawned then
     let conn = connect ~endpoint in
     ignore (Client.rpc conn P.Shutdown);
     Client.close conn;
     Option.iter Thread.join server_thread);
  let failed_hit_rate = !check_hit_rate >= 0.0 && hit_rate < !check_hit_rate in
  if failed_hit_rate then
    Printf.eprintf "loadgen: FAIL hit rate %.1f%% below required %.1f%%\n"
      hit_rate !check_hit_rate;
  let failed_p99 =
    !check_p99_ms >= 0.0
    && List.exists
         (fun rp ->
           rp.rp_achieved >= 0.95 *. rp.rp_offered
           && Histogram.percentile rp.rp_hist 99.0 > !check_p99_ms)
         curve
  in
  if failed_p99 then
    Printf.eprintf
      "loadgen: FAIL p99 above %.1fms at a sustained rate (see %s)\n"
      !check_p99_ms !out;
  let failed_disk_warm = !check_disk_warm && s0.P.s_disk_hits = 0 in
  if failed_disk_warm then
    Printf.eprintf
      "loadgen: FAIL expected warmup to hit the persistent cache \
       (disk_hits_warmup = 0)\n";
  let failed_shed =
    !expect_shed && (shed_replies = 0 || transport_errors > 0)
  in
  if failed_shed then
    Printf.eprintf
      "loadgen: FAIL expected structured shedding: %d overloaded replies, \
       %d transport errors\n"
      shed_replies transport_errors;
  (* in shed mode overloaded replies are the point, not a failure *)
  let hard_errors = if !kind = "shed" then transport_errors else errors in
  if hard_errors > 0 then
    Printf.eprintf "loadgen: %d request errors\n" hard_errors;
  if failed_hit_rate || failed_p99 || failed_disk_warm || failed_shed
     || hard_errors > 0
  then exit 1
