(* Compare two BENCH.json artifacts modulo wall-clock.

   Usage:
     dune exec bench/compare.exe -- A.json B.json

   The two files must contain the same result rows once every
   timing-derived field (the [timings_ms] block and the
   [measure_msteps_per_s] throughput) is stripped — cycles, steps, miss
   counters and speedups are all deterministic, so any difference is a
   real behavioural divergence, not noise. This is how CI pins the walk
   and closure VM backends to each other at the artifact level.

   On success the measure-phase totals of both files are printed along
   with their ratio (file A total / file B total) — run A with
   [--backend walk] and B with [--backend closure] to read off the
   closure engine's measure-phase speedup. Exits 1 on any semantic
   mismatch, 2 on usage/parse errors. *)

module Json = Slo_util.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> die "cannot open %s: %s" path msg
  | ic ->
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Json.of_string s with
    | j -> j
    | exception Json.Parse_error msg -> die "%s: %s" path msg)

let str_member key j =
  match Json.member key j with Some (Json.String s) -> s | _ -> "?"

let rows j =
  match Json.member "results" j with
  | Some (Json.List rs) -> rs
  | _ -> die "missing 'results' list"

(* a row with every wall-clock-derived field removed *)
let strip_row = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter
         (fun (k, _) ->
           not (String.equal k "timings_ms"
               || String.equal k "measure_msteps_per_s"))
         fields)
  | j -> j

let row_label = function
  | Json.Obj _ as row ->
    Printf.sprintf "%s/%s [%s]" (str_member "experiment" row)
      (str_member "benchmark" row) (str_member "scheme" row)
  | _ -> "?"

let measure_total_ms j =
  List.fold_left
    (fun acc row ->
      match Json.member "timings_ms" row with
      | Some tm -> (
        match Json.member "measure" tm with
        | Some (Json.Float ms) -> acc +. ms
        | Some (Json.Int ms) -> acc +. float_of_int ms
        | _ -> acc)
      | None -> acc)
    0.0 (rows j)

let () =
  let path_a, path_b =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ -> die "usage: compare.exe A.json B.json"
  in
  let ja = read_file path_a and jb = read_file path_b in
  let ra = rows ja and rb = rows jb in
  let mismatches = ref 0 in
  let complain fmt =
    Printf.ksprintf (fun s -> incr mismatches; prerr_endline s) fmt
  in
  if List.length ra <> List.length rb then
    complain "row count differs: %d in %s, %d in %s" (List.length ra) path_a
      (List.length rb) path_b
  else
    List.iter2
      (fun a b ->
        let sa = Json.to_string ~indent:false (strip_row a) in
        let sb = Json.to_string ~indent:false (strip_row b) in
        if not (String.equal sa sb) then
          complain "row %s differs:\n  %s: %s\n  %s: %s" (row_label a) path_a
            sa path_b sb)
      ra rb;
  let ta = measure_total_ms ja and tb = measure_total_ms jb in
  Printf.printf "%-12s backend=%-8s measure total %10.1f ms\n" path_a
    (str_member "backend" ja) ta;
  Printf.printf "%-12s backend=%-8s measure total %10.1f ms\n" path_b
    (str_member "backend" jb) tb;
  if tb > 0.0 then
    Printf.printf "measure-phase ratio (%s / %s): %.2fx\n" path_a path_b
      (ta /. tb);
  if !mismatches = 0 then
    Printf.printf "rows agree: %d rows semantically identical (modulo timings)\n"
      (List.length ra)
  else begin
    Printf.eprintf "%d mismatch(es)\n" !mismatches;
    exit 1
  end
