(* Compare two BENCH.json artifacts.

   Usage:
     dune exec bench/compare.exe -- A.json B.json

   Two modes, chosen by the artifacts' top-level [fidelity] field
   (absent = "exact", for artifacts predating the field):

   Strict (equal fidelities): the two files must contain the same result
   rows once every timing-derived field (the [timings_ms] block and the
   [measure_msteps_per_s] throughput) is stripped — cycles, steps, miss
   counters and speedups are all deterministic, so any difference is a
   real behavioural divergence, not noise. This is how CI pins the walk,
   closure and superblock VM backends to each other at the artifact
   level.

   Accuracy (different fidelities, e.g. exact vs sampled): counters are
   estimates on the sampled side, so rows are compared as a report
   instead of byte-wise. Steps must still match exactly (sampling never
   changes execution). Per row and per side (before/after), the L1 and
   L2 miss rates of the two files must agree within fixed bounds
   (|Δ| <= 0.5 percentage points for L1, 1.0 for L2), and the measured
   speedups must agree in sign (a |speedup| below 0.1% counts as zero).
   This is the artifact-level face of the roster accuracy gate.

   In both modes the measure-phase totals of both files are printed
   along with their ratio (file A total / file B total) — run A exact
   and B sampled to read off the sampler's measure-phase speedup.
   Exits 1 on any mismatch or exceeded bound, 2 on usage/parse
   errors. *)

module Json = Slo_util.Json

let l1_bound_pp = 0.5
let l2_bound_pp = 1.0
let speedup_zero_pct = 0.1

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> die "cannot open %s: %s" path msg
  | ic ->
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Json.of_string s with
    | j -> j
    | exception Json.Parse_error msg -> die "%s: %s" path msg)

let str_member key j =
  match Json.member key j with Some (Json.String s) -> s | _ -> "?"

let num_member key j =
  match Json.member key j with
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some (Json.Float f) -> Some f
  | _ -> None

let rows j =
  match Json.member "results" j with
  | Some (Json.List rs) -> rs
  | _ -> die "missing 'results' list"

let fidelity_of j =
  match Json.member "fidelity" j with
  | Some (Json.String s) -> s
  | _ -> "exact"

(* a row with every wall-clock-derived field removed *)
let strip_row = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter
         (fun (k, _) ->
           not (String.equal k "timings_ms"
               || String.equal k "measure_msteps_per_s"))
         fields)
  | j -> j

let row_label = function
  | Json.Obj _ as row ->
    Printf.sprintf "%s/%s [%s]" (str_member "experiment" row)
      (str_member "benchmark" row) (str_member "scheme" row)
  | _ -> "?"

let measure_total_ms j =
  List.fold_left
    (fun acc row ->
      match Json.member "timings_ms" row with
      | Some tm -> (
        match Json.member "measure" tm with
        | Some (Json.Float ms) -> acc +. ms
        | Some (Json.Int ms) -> acc +. float_of_int ms
        | _ -> acc)
      | None -> acc)
    0.0 (rows j)

(* ---------------- strict mode ---------------- *)

let compare_strict complain path_a path_b ra rb =
  List.iter2
    (fun a b ->
      let sa = Json.to_string ~indent:false (strip_row a) in
      let sb = Json.to_string ~indent:false (strip_row b) in
      if not (String.equal sa sb) then
        complain
          (Printf.sprintf "row %s differs:\n  %s: %s\n  %s: %s" (row_label a)
             path_a sa path_b sb))
    ra rb

(* ---------------- accuracy mode ---------------- *)

(* misses / accesses as a percentage, when both counters are present *)
let miss_rate_pct row ~misses_key ~accesses_key =
  match (num_member misses_key row, num_member accesses_key row) with
  | Some m, Some acc when acc > 0.0 -> Some (100.0 *. m /. acc)
  | _ -> None

let sign_of ~eps x = if x > eps then 1 else if x < -.eps then -1 else 0

let compare_accuracy complain ra rb =
  let check_rate label bound a b ~misses_key ~accesses_key =
    match
      ( miss_rate_pct a ~misses_key ~accesses_key,
        miss_rate_pct b ~misses_key ~accesses_key )
    with
    | Some pa, Some pb ->
      let d = Float.abs (pa -. pb) in
      Printf.printf "  %-28s %7.3f%% vs %7.3f%%  |d| = %5.3fpp%s\n"
        label pa pb d
        (if d > bound then Printf.sprintf "  EXCEEDS %.1fpp" bound else "");
      if d > bound then
        complain
          (Printf.sprintf "%s: miss-rate delta %.3fpp exceeds the %.1fpp bound"
             label d bound)
    | _ -> ()
  in
  List.iter2
    (fun a b ->
      let label = row_label a in
      if not (String.equal label (row_label b)) then
        complain
          (Printf.sprintf "row order differs: %s vs %s" label (row_label b))
      else begin
        (* identity and execution-exact fields must match in any fidelity *)
        List.iter
          (fun k ->
            let va = Json.member k a and vb = Json.member k b in
            if va <> vb then
              complain
                (Printf.sprintf
                   "row %s: %s differs between fidelities (%s vs %s)" label k
                   (match va with
                   | Some v -> Json.to_string ~indent:false v
                   | None -> "absent")
                   (match vb with
                   | Some v -> Json.to_string ~indent:false v
                   | None -> "absent")))
          [ "error"; "steps_before"; "steps_after" ];
        (* miss-rate accuracy, each side of the transformation *)
        if Json.member "l1_misses_before" a <> Some Json.Null then begin
          Printf.printf "%s\n" label;
          check_rate (label ^ " L1 before") l1_bound_pp a b
            ~misses_key:"l1_misses_before" ~accesses_key:"accesses_before";
          check_rate (label ^ " L1 after") l1_bound_pp a b
            ~misses_key:"l1_misses_after" ~accesses_key:"accesses_after";
          check_rate (label ^ " L2 before") l2_bound_pp a b
            ~misses_key:"l2_misses_before" ~accesses_key:"accesses_before";
          check_rate (label ^ " L2 after") l2_bound_pp a b
            ~misses_key:"l2_misses_after" ~accesses_key:"accesses_after";
          (* the decision the measurement feeds must not flip *)
          match (num_member "speedup_pct" a, num_member "speedup_pct" b) with
          | Some sa, Some sb ->
            let za = sign_of ~eps:speedup_zero_pct sa
            and zb = sign_of ~eps:speedup_zero_pct sb in
            Printf.printf "  %-28s %+7.2f%% vs %+7.2f%%  sign %s\n"
              (label ^ " speedup") sa sb
              (if za = zb then "agrees" else "FLIPS");
            if za <> zb then
              complain
                (Printf.sprintf
                   "%s: speedup sign flips between fidelities (%+.2f%% vs \
                    %+.2f%%)"
                   label sa sb)
          | _ -> ()
        end
      end)
    ra rb

let () =
  let path_a, path_b =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ -> die "usage: compare.exe A.json B.json"
  in
  let ja = read_file path_a and jb = read_file path_b in
  let fa = fidelity_of ja and fb = fidelity_of jb in
  let ra = rows ja and rb = rows jb in
  let mismatches = ref 0 in
  let complain fmt =
    Printf.ksprintf (fun s -> incr mismatches; prerr_endline s) fmt
  in
  let strict = String.equal fa fb in
  if List.length ra <> List.length rb then
    complain "row count differs: %d in %s, %d in %s" (List.length ra) path_a
      (List.length rb) path_b
  else begin
    let complain1 s = complain "%s" s in
    if strict then compare_strict complain1 path_a path_b ra rb
    else begin
      Printf.printf "accuracy report: %s (%s) vs %s (%s)\n" path_a fa path_b
        fb;
      compare_accuracy complain1 ra rb
    end
  end;
  let ta = measure_total_ms ja and tb = measure_total_ms jb in
  Printf.printf "%-12s backend=%-10s fidelity=%-16s measure total %10.1f ms\n"
    path_a (str_member "backend" ja) fa ta;
  Printf.printf "%-12s backend=%-10s fidelity=%-16s measure total %10.1f ms\n"
    path_b (str_member "backend" jb) fb tb;
  if tb > 0.0 then
    Printf.printf "measure-phase ratio (%s / %s): %.2fx\n" path_a path_b
      (ta /. tb);
  if !mismatches = 0 then
    if strict then
      Printf.printf
        "rows agree: %d rows semantically identical (modulo timings)\n"
        (List.length ra)
    else
      Printf.printf
        "rows agree: %d rows within accuracy bounds (L1 %.1fpp, L2 %.1fpp, \
         speedup sign)\n"
        (List.length ra) l1_bound_pp l2_bound_pp
  else begin
    Printf.eprintf "%d mismatch(es)\n" !mismatches;
    exit 1
  end
