(* tunebench — the roster through the layout autotuner.

   Usage:
     dune exec bench/tunebench.exe -- [--only NAME]... [--scheme S]
       [--jobs N] [--verify-jobs N] [--budget-ms MS] [--beam N] [--seed N]
       [--check-improved K] [--out PATH]

   For every roster entry the tuner searches the candidate-plan closure
   (split points x field orders x peel x padding) with the sampled
   cachesim as cost oracle and the heuristic decision as the incumbent,
   then writes one row per entry to _artifacts/TUNE.json: heuristic vs
   found cycles, the plans in codec form, and the search statistics.

   Gates (exit 1):
   - an entry whose found plan scores worse than the heuristic one —
     structurally impossible unless the tuner's promotion logic broke;
   - with --check-improved K, fewer than K entries strictly improved;
   - with --verify-jobs N, any entry whose complete search result at
     --jobs N differs from the main run's (the determinism contract:
     same seed, any worker count, byte-identical winner).

   Entries run serially; each search parallelizes internally across
   --jobs worker domains. *)

module Suite = Slo_suite.Suite
module Engine = Slo_bench.Engine
module Tune = Slo_tune.Tune
module Codec = Slo_core.Codec
module W = Slo_profile.Weights
module Json = Slo_util.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

type row = {
  row_name : string;
  row_result : (Tune.result, string) result;
}

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if String.equal line "" then "unknown" else line
  with _ -> "unknown"

let delta_pct (r : Tune.result) =
  if r.t_found_cycles > 0 then
    (float_of_int r.t_heuristic_cycles /. float_of_int r.t_found_cycles -. 1.0)
    *. 100.0
  else 0.0

let json_of_row row =
  let base = [ ("benchmark", Json.String row.row_name) ] in
  match row.row_result with
  | Error e -> Json.Obj (base @ [ ("error", Json.String e) ])
  | Ok r ->
    let plans ps = Json.List (List.map (fun p -> Json.String (Codec.plan_to_string p)) ps) in
    Json.Obj
      (base
      @ [
          ("baseline_cycles", Json.Int r.Tune.t_baseline_cycles);
          ("heuristic_cycles", Json.Int r.t_heuristic_cycles);
          ("found_cycles", Json.Int r.t_found_cycles);
          ("improved", Json.Bool r.t_improved);
          ("delta_pct", Json.Float (delta_pct r));
          ("explored", Json.Int r.t_explored);
          ("rejected", Json.Int r.t_rejected);
          ("total", Json.Int r.t_total);
          ("complete", Json.Bool r.t_complete);
          ("wall_ms", Json.Float r.t_wall_ms);
          ("heuristic_plans", plans r.t_heuristic);
          ("found_plans", plans r.t_found);
        ])

let () =
  let only = ref [] and scheme_name = ref "pbo" and jobs = ref 1 in
  let verify_jobs = ref 0 and budget_ms = ref None and beam = ref 4 in
  let seed = ref 0 and check_improved = ref (-1) in
  let max_candidates = ref 96 and out = ref "_artifacts/TUNE.json" in
  let rec parse = function
    | [] -> ()
    | "--only" :: v :: rest -> only := v :: !only; parse rest
    | "--scheme" :: v :: rest -> scheme_name := v; parse rest
    | "--jobs" :: v :: rest ->
      jobs := (match int_of_string_opt v with
        | Some n when n >= 1 -> n | _ -> die "bad --jobs %S" v);
      parse rest
    | "--verify-jobs" :: v :: rest ->
      verify_jobs := (match int_of_string_opt v with
        | Some n when n >= 0 -> n | _ -> die "bad --verify-jobs %S" v);
      parse rest
    | "--budget-ms" :: v :: rest ->
      budget_ms := (match float_of_string_opt v with
        | Some f when f >= 0.0 -> Some f | _ -> die "bad --budget-ms %S" v);
      parse rest
    | "--beam" :: v :: rest ->
      beam := (match int_of_string_opt v with
        | Some n when n >= 1 -> n | _ -> die "bad --beam %S" v);
      parse rest
    | "--seed" :: v :: rest ->
      seed := (match int_of_string_opt v with
        | Some n -> n | None -> die "bad --seed %S" v);
      parse rest
    | "--check-improved" :: v :: rest ->
      check_improved := (match int_of_string_opt v with
        | Some n when n >= 0 -> n | _ -> die "bad --check-improved %S" v);
      parse rest
    | "--max-candidates" :: v :: rest ->
      max_candidates := (match int_of_string_opt v with
        | Some n when n >= 1 -> n | _ -> die "bad --max-candidates %S" v);
      parse rest
    | "--out" :: v :: rest -> out := v; parse rest
    | a :: _ -> die "unexpected argument %S" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  let scheme =
    match Codec.scheme_of_string !scheme_name with
    | Ok s -> s
    | Error e -> die "%s" e
  in
  let roster =
    match !only with
    | [] -> Suite.roster
    | names ->
      List.map
        (fun n ->
          match Suite.find n with
          | e -> e
          | exception Not_found -> die "unknown roster entry %S" n)
        (List.rev names)
  in
  let t0 = Slo_util.Clock.now_ns () in
  let search_entry ~jobs (e : Suite.entry) =
    let prog, _ = Engine.compile e in
    let feedback =
      if W.needs_profile scheme then Some (fst (Engine.train_profile e prog))
      else None
    in
    (* score on the train input, like the paper's profile-guided flow:
       the ref runs are an order of magnitude longer, and the point is
       plan choice, not ref-input measurement *)
    let cfg =
      { (Tune.default_config ~scheme ~feedback) with
        Tune.args = e.train_args; jobs; budget_ms = !budget_ms;
        beam = !beam; seed = !seed;
        max_candidates = !max_candidates }
    in
    Tune.search prog cfg
  in
  let failed = ref false in
  let rows =
    List.map
      (fun (e : Suite.entry) ->
        Printf.printf "tune %-14s ...%!" e.name;
        match search_entry ~jobs:!jobs e with
        | exception exn ->
          Printf.printf " ERROR %s\n%!" (Printexc.to_string exn);
          failed := true;
          { row_name = e.name; row_result = Error (Printexc.to_string exn) }
        | r ->
          Printf.printf
            " heuristic %8d -> found %8d cycles (%+.2f%%)%s %d/%d cands \
             %.0fms\n%!"
            r.Tune.t_heuristic_cycles r.t_found_cycles (delta_pct r)
            (if r.t_improved then " IMPROVED" else "")
            r.t_explored r.t_total r.t_wall_ms;
          if r.t_found_cycles > r.t_heuristic_cycles then begin
            Printf.printf "FAIL %s: found plan scores worse than the \
                           heuristic one\n" e.name;
            failed := true
          end;
          (if !verify_jobs > 0 && !verify_jobs <> !jobs then begin
             let r2 = search_entry ~jobs:!verify_jobs e in
             (* the determinism contract binds complete searches; a
                budget-truncated pair is only comparable on the
                never-worse invariant *)
             if r.t_complete && r2.Tune.t_complete
                && (r2.t_found <> r.Tune.t_found
                   || r2.t_found_cycles <> r.t_found_cycles
                   || r2.t_heuristic_cycles <> r.t_heuristic_cycles)
             then begin
               Printf.printf
                 "FAIL %s: --jobs %d and --jobs %d disagree (%d vs %d \
                  cycles)\n"
                 e.name !jobs !verify_jobs r.t_found_cycles
                 r2.t_found_cycles;
               failed := true
             end
           end);
          { row_name = e.name; row_result = Ok r })
      roster
  in
  let improved =
    List.length
      (List.filter
         (fun row ->
           match row.row_result with Ok r -> r.Tune.t_improved | Error _ -> false)
         rows)
  in
  Printf.printf "%d/%d entries strictly improved over the heuristic\n"
    improved (List.length rows);
  if !check_improved >= 0 && improved < !check_improved then begin
    Printf.printf "FAIL fewer than %d entries improved\n" !check_improved;
    failed := true
  end;
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ("tool", Json.String "slo-tunebench");
        ("git_rev", Json.String (git_rev ()));
        ("scheme", Json.String (Codec.scheme_name scheme));
        ("jobs", Json.Int !jobs);
        ("beam", Json.Int !beam);
        ("seed", Json.Int !seed);
        ( "budget_ms",
          match !budget_ms with None -> Json.Null | Some f -> Json.Float f );
        ("improved_entries", Json.Int improved);
        ( "wall_clock_s",
          Json.Float (Slo_util.Clock.elapsed_ms ~since:t0 /. 1000.0) );
        ("results", Json.List (List.map json_of_row rows));
      ]
  in
  let dir = Filename.dirname !out in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  exit (if !failed then 1 else 0)
