(** The parallel evaluation engine behind [bench/main.exe].

    Each per-benchmark unit of work (compile → collect profile → analyze
    → transform → measure before/after) is a pure job dispatched to a
    {!Slo_exec.Pool} of worker domains; results are collected in roster
    order, so the rendered tables are byte-identical regardless of the
    worker count. A job that crashes surfaces as a per-entry error row
    (and an [error] field in the JSON record) instead of killing the run.

    Every run records per-phase wall-clock timings and machine-readable
    result rows, written as [_artifacts/BENCH.json] so that successive
    PRs have a perf trajectory to compare against. *)

type timings = {
  t_compile_ms : float;   (** parse + typecheck + lower + verify *)
  t_profile_ms : float;   (** train-profile collection; 0 on cache hit *)
  t_analyze_ms : float;   (** legality + affinity + decide *)
  t_transform_ms : float; (** copy + apply plans + verify *)
  t_measure_ms : float;   (** before/after VM runs *)
}

type record = {
  r_experiment : string;        (** "table1" | "table3" *)
  r_benchmark : string;
  r_scheme : string option;     (** [None] for analysis-only rows *)
  r_error : string option;      (** [Some exn] for a crashed job's row *)
  r_cycles : (int * int) option;       (** before, after *)
  r_steps : (int * int) option;        (** VM steps before, after *)
  r_l1_misses : (int * int) option;
  r_l2_misses : (int * int) option;
  r_accesses : (int * int) option;
      (** simulated accesses before, after — the denominator compare.exe
          needs to turn miss counts into miss rates *)
  r_speedup_pct : float option;
  r_timings : timings;
}

(* ---------------- shared caches ---------------- *)

val compile : Slo_suite.Suite.entry -> Ir.program * float
(** Memoized [Driver.compile ~verify:true] (every bench run doubles as a
    verifier sweep); returns the program and the original compile time in
    ms. Re-raises the stored exception for an entry that failed. Safe to
    call from worker domains; the cache itself is filled under a mutex
    (call {!precompile} first to hoist all compilation out of the
    workers). *)

val precompile : Slo_suite.Suite.entry list -> unit
(** Compile every entry serially in the calling domain, caching per-entry
    results — including failures, which later {!compile} calls re-raise. *)

val train_profile :
  Slo_suite.Suite.entry -> Ir.program -> Slo_profile.Feedback.t * float
(** Memoized train-input profile collection ([Collect.collect
    ~args:e.train_args]), keyed by entry name with a per-entry lock so
    distinct entries collect in parallel. Returns the feedback and the
    collection time in ms (0.0 on a cache hit). This is the cache that
    Table 2 / Figure 2 / the ablation and Table 3's PBO rows share — the
    mcf train run is collected exactly once per process. *)

val reset_caches : unit -> unit
(** Drop the compile and profile caches (tests). *)

(* ---------------- runs ---------------- *)

type run

val create_run :
  ?backend:Slo_vm.Backend.t ->
  ?fidelity:Slo_cachesim.Sampled.fidelity ->
  jobs:int ->
  unit ->
  run
(** Start a run backed by a fresh pool of [jobs] worker domains.
    [backend] selects the VM engine for every measurement run (default
    {!Slo_vm.Backend.default}, the closure-compiled one); all backends
    produce identical counters, so the choice only affects wall-clock
    speed — which the per-row [measure_msteps_per_s] and the table3
    throughput summary make visible. [fidelity] (default exact) selects
    the cache-simulation fidelity of every measurement
    ({!Slo_core.Driver.measure}); sampled runs trade bounded counter
    accuracy for measure-phase throughput, and [compare.exe] switches
    to an accuracy report when diffing artifacts of different
    fidelities. *)

val jobs : run -> int
val backend : run -> Slo_vm.Backend.t
val fidelity : run -> Slo_cachesim.Sampled.fidelity

val records : run -> record list
(** All records accumulated so far, in submission order. *)

val table1 : run -> roster:Slo_suite.Suite.entry list -> string
(** Types / transformable types (legality + points-to), one job per
    entry. Returns the rendered table (headers to print live are the
    caller's business); progress lines are printed at dispatch time. *)

val table3 : run -> roster:Slo_suite.Suite.entry list -> string
(** Transformed types and performance impact: one job per (entry,
    scheme) row, PBO for everyone plus the paper's no-profile ISPBO rows
    for mcf and moldyn. *)

val pool_table : run -> roster:Slo_suite.Suite.entry list -> string
(** Index-linked pool rows: one per self-referential record type in the
    roster. Shape-poolable types are rewritten with {!Transform.pool},
    validated by the differential oracle (output + per-field access
    conservation) and measured before/after under the cachesim; refuted
    types show their first uniqueness witness instead. Measured rows are
    recorded under experiment ["pool"]. *)

val write_json : run -> path:string -> unit
(** Write the accumulated records plus run metadata (jobs, git revision,
    wall-clock) as JSON to [path], creating the directory if needed. *)

val finish : run -> unit
(** Shut the worker pool down. *)

val json_of_record : ?with_timings:bool -> record -> Slo_util.Json.t
(** One record as JSON; [~with_timings:false] zeroes the timing block so
    runs can be compared for semantic equality. *)
