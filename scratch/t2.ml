module D = Slo_core.Driver
module H = Slo_core.Heuristics
module L = Slo_core.Legality

let bench name src args scheme =
  let prog = D.compile src in
  let t0 = Unix.gettimeofday () in
  let fb, _ = Slo_profile.Collect.collect ~args prog in
  let t1 = Unix.gettimeofday () in
  let ev = D.evaluate ~args ~scheme ~feedback:(Some fb) prog in
  let t2 = Unix.gettimeofday () in
  Printf.printf "=== %s (collect %.1fs, eval %.1fs) ===\n" name (t1-.t0) (t2-.t1);
  let leg = L.analyze prog in
  Printf.printf "  types=%d legal=%d relax=%d\n" (List.length (L.types leg)) (L.legal_count leg) (L.legal_count ~relax:true leg);
  List.iter (fun (s:string) ->
    Printf.printf "    %s: [%s]\n" s (String.concat "," (List.map L.reason_name (L.reasons leg s)))) (L.types leg);
  List.iter (fun (d : H.decision) ->
    match d.d_plan with
    | Some p -> Printf.printf "  plan: %s\n" (H.plan_summary p)
    | None -> ()) ev.e_decisions;
  Printf.printf "  before: cycles=%d steps=%d l1m=%d l2m=%d\n  out: %s\n"
    ev.e_before.m_cycles ev.e_before.m_result.steps ev.e_before.m_l1_misses ev.e_before.m_l2_misses (String.trim ev.e_before.m_result.output);
  Printf.printf "  after : cycles=%d\n  out: %s\n" ev.e_after.m_cycles (String.trim ev.e_after.m_result.output);
  Printf.printf "  SPEEDUP %.1f%%\n%!" ev.e_speedup_pct;
  assert (ev.e_before.m_result.output = ev.e_after.m_result.output)

let () =
  bench "mcf" Slo_suite.Prog_mcf.source [8;3] Slo_profile.Weights.PBO;
  bench "art" Slo_suite.Prog_art.source [6] Slo_profile.Weights.PBO;
  print_endline "OK"
