(* roster smoke: compile, run (tiny args), legality table for every program *)
module D = Slo_core.Driver
module L = Slo_core.Legality

let () =
  List.iter (fun (e : Slo_suite.Suite.entry) ->
    (try
      let prog = D.compile e.source in
      let leg = L.analyze prog in
      let n = List.length (L.types leg) in
      let lg = L.legal_count leg and rx = L.legal_count ~relax:true leg in
      (* run with minimal scale for speed *)
      let args = List.map (fun a -> max 1 (a / 8)) e.train_args in
      let res = Slo_vm.Interp.run_program ~args prog in
      Printf.printf "%-22s types=%2d legal=%2d (%.1f%%) relax=%2d (%.1f%%) exit=%d out=%s\n%!"
        e.name n lg (100.0 *. float lg /. float n) rx (100.0 *. float rx /. float n)
        res.exit_code (String.trim res.output)
    with ex ->
      Printf.printf "%-22s FAILED: %s\n%!" e.name (Printexc.to_string ex)))
    (Slo_suite.Suite.roster @ Slo_suite.Suite.case_studies)
