(* print field hotness table for mcf under several schemes *)
module D = Slo_core.Driver
module W = Slo_profile.Weights
module A = Slo_core.Affinity

let () =
  let prog = D.compile Slo_suite.Prog_mcf.source in
  let fb_train, _ = Slo_profile.Collect.collect ~args:Slo_suite.Prog_mcf.train_args prog in
  let schemes = [ W.PBO, Some fb_train; W.SPBO, None; W.ISPBO, None ] in
  let decl = Structs.find prog.Ir.structs "node" in
  Printf.printf "%-14s" "field";
  List.iter (fun (s,_) -> Printf.printf "%10s" (W.name s)) schemes;
  print_newline ();
  let rels = List.map (fun (s, fb) ->
    let bw = W.block_weights prog s ~feedback:fb in
    let aff = A.analyze prog bw in
    match A.graph aff "node" with
    | Some g -> A.relative_hotness g
    | None -> [||]) schemes in
  Array.iteri (fun i (f : Structs.field) ->
    Printf.printf "%-14s" f.name;
    List.iter (fun r -> Printf.printf "%10.1f" r.(i)) rels;
    print_newline ()) decl.fields
