(* splitting scenario: mcf-like *)
let src_split = {|
struct node {
  long hotA;
  long hotB;
  struct node *next;
  long cold1;
  long cold2;
  long cold3;
  double cold4;
  long deadf;
};

struct node *build(int n) {
  struct node *a; int i;
  a = (struct node*)malloc(n * sizeof(struct node));
  for (i = 0; i < n; i++) {
    a[i].hotA = i;
    a[i].hotB = i * 2;
    a[i].cold1 = i + 7;
    a[i].cold2 = i - 3;
    a[i].cold3 = i * i;
    a[i].cold4 = i * 0.5;
    a[i].deadf = i * 31;
    if (i > 0) { a[i-1].next = (a + i); }
  }
  a[n-1].next = (struct node*)0;
  return a;
}

int main() {
  int n = 5000; int iter; long sum = 0; double csum = 0.0;
  struct node *head; struct node *p;
  head = build(n);
  for (iter = 0; iter < 200; iter++) {
    p = head;
    while (p != (struct node*)0) {
      sum = sum + p->hotA + p->hotB;
      p = p->next;
    }
  }
  p = head;
  while (p != (struct node*)0) {
    csum = csum + p->cold1 + p->cold2 + p->cold3 + p->cold4;
    p = p->next;
  }
  printf("sum=%ld csum=%g\n", sum, csum);
  return 0;
}
|}

let src_peel = {|
struct neuron {
  double I;
  double W;
  double X;
  double V;
  double U;
  double P;
  double Q;
  double R;
};
struct neuron *f1;
int cnt;

void init(int n) {
  int i;
  f1 = (struct neuron*)malloc(n * sizeof(struct neuron));
  for (i = 0; i < n; i++) {
    f1[i].I = i * 0.25;
    f1[i].W = 1.0;
    f1[i].X = 0.0;
    f1[i].V = 0.5;
    f1[i].U = 0.0;
    f1[i].P = 0.0;
    f1[i].Q = 0.0;
    f1[i].R = 0.0;
  }
}

int main() {
  int n = 20000; int it; int i; double acc = 0.0;
  init(n);
  for (it = 0; it < 40; it++) {
    for (i = 0; i < n; i++) {
      acc = acc + f1[i].W * f1[i].I;
    }
  }
  printf("acc=%g\n", acc);
  return 0;
}
|}

let eval name src scheme =
  let prog = Slo_core.Driver.compile src in
  let fb, _ = Slo_profile.Collect.collect prog in
  let ev = Slo_core.Driver.evaluate ~scheme ~feedback:(Some fb) prog in
  Printf.printf "=== %s ===\n" name;
  List.iter (fun (d : Slo_core.Heuristics.decision) ->
    Printf.printf "  %s: %s | %s\n" d.d_typ
      (match d.d_plan with Some p -> Slo_core.Heuristics.plan_summary p | None -> "no transform")
      (String.concat "; " d.d_notes)) ev.e_decisions;
  Printf.printf "  before: out=%s cycles=%d l2miss=%d\n" (String.trim ev.e_before.m_result.output) ev.e_before.m_cycles ev.e_before.m_l2_misses;
  Printf.printf "  after : out=%s cycles=%d l2miss=%d\n" (String.trim ev.e_after.m_result.output) ev.e_after.m_cycles ev.e_after.m_l2_misses;
  Printf.printf "  speedup: %.1f%%\n" ev.e_speedup_pct;
  assert (ev.e_before.m_result.output = ev.e_after.m_result.output)

let () =
  eval "split (mcf-like)" src_split Slo_profile.Weights.PBO;
  eval "peel (art-like)" src_peel Slo_profile.Weights.PBO;
  print_endline "OK"
